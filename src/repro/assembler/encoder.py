"""Mnemonic-level instruction encoding.

``encode(mnemonic, operands, ctx)`` turns a parsed statement into a 32-bit
word.  The :class:`EncodeContext` supplies the statement's address (for
PC-relative operands) and an expression resolver bound to the symbol table.

The tables in this module are the inverse of :mod:`repro.isa.decoder`; the
round-trip property (assemble -> decode -> disassemble -> assemble) is
enforced by the test suite.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.isa import opcodes as op
from repro.isa.csr import parse_csr
from repro.isa.fields import (
    EEW_TO_VMEM_WIDTH,
    encode_b,
    encode_i,
    encode_j,
    encode_r,
    encode_r4,
    encode_s,
    encode_u,
    encode_vector_arith,
    encode_vector_mem,
)
from repro.isa.registers import parse_fp_reg, parse_int_reg, parse_vec_reg
from repro.isa.vtype import parse_vtype_tokens


class EncodeError(Exception):
    """Raised when a statement cannot be encoded."""


@dataclass
class EncodeContext:
    """Per-statement encoding context."""

    pc: int
    resolve: Callable[[str], int]


_MEM_OPERAND_RE = re.compile(r"^(?P<offset>.*?)\((?P<base>[^()]+)\)$")


def parse_mem_operand(token: str, ctx: EncodeContext) -> tuple[int, int]:
    """Parse ``offset(base)`` into ``(offset, base_reg)``."""
    match = _MEM_OPERAND_RE.match(token.strip())
    if not match:
        raise EncodeError(f"expected mem operand 'offset(base)', got {token!r}")
    offset_text = match.group("offset").strip()
    offset = ctx.resolve(offset_text) if offset_text else 0
    return offset, parse_int_reg(match.group("base").strip())


def _branch_offset(token: str, ctx: EncodeContext) -> int:
    """Offset for a branch/jump target: symbol -> PC-relative."""
    target = ctx.resolve(token)
    return target - ctx.pc


def _require(operands: list[str], count: int, mnemonic: str) -> None:
    if len(operands) != count:
        raise EncodeError(
            f"{mnemonic} expects {count} operands, got {len(operands)}")


# ---------------------------------------------------------------------------
# Scalar integer tables
# ---------------------------------------------------------------------------

_R_TYPE = {
    # mnemonic: (opcode, funct3, funct7)
    "add": (op.OP, 0, 0x00), "sub": (op.OP, 0, 0x20),
    "sll": (op.OP, 1, 0x00), "slt": (op.OP, 2, 0x00),
    "sltu": (op.OP, 3, 0x00), "xor": (op.OP, 4, 0x00),
    "srl": (op.OP, 5, 0x00), "sra": (op.OP, 5, 0x20),
    "or": (op.OP, 6, 0x00), "and": (op.OP, 7, 0x00),
    "mul": (op.OP, 0, 0x01), "mulh": (op.OP, 1, 0x01),
    "mulhsu": (op.OP, 2, 0x01), "mulhu": (op.OP, 3, 0x01),
    "div": (op.OP, 4, 0x01), "divu": (op.OP, 5, 0x01),
    "rem": (op.OP, 6, 0x01), "remu": (op.OP, 7, 0x01),
    "addw": (op.OP_32, 0, 0x00), "subw": (op.OP_32, 0, 0x20),
    "sllw": (op.OP_32, 1, 0x00), "srlw": (op.OP_32, 5, 0x00),
    "sraw": (op.OP_32, 5, 0x20),
    "mulw": (op.OP_32, 0, 0x01), "divw": (op.OP_32, 4, 0x01),
    "divuw": (op.OP_32, 5, 0x01), "remw": (op.OP_32, 6, 0x01),
    "remuw": (op.OP_32, 7, 0x01),
}

_I_ARITH = {
    "addi": (op.OP_IMM, 0), "slti": (op.OP_IMM, 2), "sltiu": (op.OP_IMM, 3),
    "xori": (op.OP_IMM, 4), "ori": (op.OP_IMM, 6), "andi": (op.OP_IMM, 7),
    "addiw": (op.OP_IMM_32, 0),
}

_SHIFT_IMM = {
    # mnemonic: (opcode, funct3, funct7-high, shamt-bits)
    "slli": (op.OP_IMM, 1, 0x00, 6), "srli": (op.OP_IMM, 5, 0x00, 6),
    "srai": (op.OP_IMM, 5, 0x20, 6),
    "slliw": (op.OP_IMM_32, 1, 0x00, 5), "srliw": (op.OP_IMM_32, 5, 0x00, 5),
    "sraiw": (op.OP_IMM_32, 5, 0x20, 5),
}

_LOADS = {"lb": 0, "lh": 1, "lw": 2, "ld": 3, "lbu": 4, "lhu": 5, "lwu": 6}
_STORES = {"sb": 0, "sh": 1, "sw": 2, "sd": 3}
_BRANCHES = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}

_CSR_REG = {"csrrw": 1, "csrrs": 2, "csrrc": 3}
_CSR_IMM = {"csrrwi": 5, "csrrsi": 6, "csrrci": 7}

_AMO_FUNCT5 = {
    "lr": 0x02, "sc": 0x03, "amoswap": 0x01, "amoadd": 0x00,
    "amoxor": 0x04, "amoand": 0x0C, "amoor": 0x08,
    "amomin": 0x10, "amomax": 0x14, "amominu": 0x18, "amomaxu": 0x1C,
}

_SYSTEM_FIXED = {
    "ecall": 0x0000_0073,
    "ebreak": 0x0010_0073,
    "mret": 0x3020_0073,
    "wfi": 0x1050_0073,
    "fence": 0x0FF0_000F,
    "fence.i": 0x0000_100F,
    "nop": 0x0000_0013,
}

# ---------------------------------------------------------------------------
# FP tables
# ---------------------------------------------------------------------------

_FP_R = {  # mnemonic: funct7 (rm encoded as 0)
    "fadd.s": 0x00, "fadd.d": 0x01, "fsub.s": 0x04, "fsub.d": 0x05,
    "fmul.s": 0x08, "fmul.d": 0x09, "fdiv.s": 0x0C, "fdiv.d": 0x0D,
}
_FP_SGNJ = {  # mnemonic: (funct7, funct3)
    "fsgnj.s": (0x10, 0), "fsgnjn.s": (0x10, 1), "fsgnjx.s": (0x10, 2),
    "fsgnj.d": (0x11, 0), "fsgnjn.d": (0x11, 1), "fsgnjx.d": (0x11, 2),
    "fmin.s": (0x14, 0), "fmax.s": (0x14, 1),
    "fmin.d": (0x15, 0), "fmax.d": (0x15, 1),
}
_FP_CMP = {
    "feq.s": (0x50, 2), "flt.s": (0x50, 1), "fle.s": (0x50, 0),
    "feq.d": (0x51, 2), "flt.d": (0x51, 1), "fle.d": (0x51, 0),
}
_FP_CVT_TO_INT = {  # mnemonic: (funct7, rs2-code)
    "fcvt.w.s": (0x60, 0), "fcvt.wu.s": (0x60, 1),
    "fcvt.l.s": (0x60, 2), "fcvt.lu.s": (0x60, 3),
    "fcvt.w.d": (0x61, 0), "fcvt.wu.d": (0x61, 1),
    "fcvt.l.d": (0x61, 2), "fcvt.lu.d": (0x61, 3),
}
_FP_CVT_FROM_INT = {
    "fcvt.s.w": (0x68, 0), "fcvt.s.wu": (0x68, 1),
    "fcvt.s.l": (0x68, 2), "fcvt.s.lu": (0x68, 3),
    "fcvt.d.w": (0x69, 0), "fcvt.d.wu": (0x69, 1),
    "fcvt.d.l": (0x69, 2), "fcvt.d.lu": (0x69, 3),
}
_FMA = {"fmadd": op.MADD, "fmsub": op.MSUB,
        "fnmsub": op.NMSUB, "fnmadd": op.NMADD}

# ---------------------------------------------------------------------------
# Vector tables (funct6 values; see decoder for the authoritative mapping)
# ---------------------------------------------------------------------------

_V_OPI_FUNCT6 = {
    "vadd": 0x00, "vsub": 0x02, "vrsub": 0x03, "vminu": 0x04, "vmin": 0x05,
    "vmaxu": 0x06, "vmax": 0x07, "vand": 0x09, "vor": 0x0A, "vxor": 0x0B,
    "vrgather": 0x0C, "vslideup": 0x0E, "vslidedown": 0x0F,
    "vmseq": 0x18, "vmsne": 0x19, "vmsltu": 0x1A, "vmslt": 0x1B,
    "vmsleu": 0x1C, "vmsle": 0x1D, "vmsgtu": 0x1E, "vmsgt": 0x1F,
    "vsll": 0x25, "vsrl": 0x28, "vsra": 0x29,
}
_V_OPM_FUNCT6 = {
    "vredsum": 0x00, "vredand": 0x01, "vredor": 0x02, "vredxor": 0x03,
    "vredminu": 0x04, "vredmin": 0x05, "vredmaxu": 0x06, "vredmax": 0x07,
    "vdivu": 0x20, "vdiv": 0x21, "vremu": 0x22, "vrem": 0x23,
    "vmulhu": 0x24, "vmul": 0x25, "vmulhsu": 0x26, "vmulh": 0x27,
    "vmadd": 0x29, "vnmsub": 0x2B, "vmacc": 0x2D, "vnmsac": 0x2F,
}
_V_OPF_FUNCT6 = {
    "vfadd": 0x00, "vfredusum": 0x01, "vfsub": 0x02, "vfredosum": 0x03,
    "vfmin": 0x04, "vfredmin": 0x05, "vfmax": 0x06, "vfredmax": 0x07,
    "vfsgnj": 0x08, "vfsgnjn": 0x09, "vfsgnjx": 0x0A,
    "vmfeq": 0x18, "vmfle": 0x19, "vmflt": 0x1B, "vmfne": 0x1C,
    "vfdiv": 0x20, "vfmul": 0x24,
    "vfmadd": 0x28, "vfnmadd": 0x29, "vfmsub": 0x2A, "vfnmsub": 0x2B,
    "vfmacc": 0x2C, "vfnmacc": 0x2D, "vfmsac": 0x2E, "vfnmsac": 0x2F,
}

_V_UNSIGNED_IMM = frozenset({"vsll", "vsrl", "vsra", "vslideup",
                             "vslidedown", "vrgather"})

# Multiply-accumulate family: assembly operand order is (vd, op1, vs2),
# the reverse of the usual (vd, vs2, op1).
_V_MACC_ORDER = frozenset({"vmacc", "vnmsac", "vmadd", "vnmsub",
                           "vfmacc", "vfnmacc", "vfmsac", "vfnmsac",
                           "vfmadd", "vfnmadd", "vfmsub", "vfnmsub"})

_VMEM_RE = re.compile(
    r"^v(?P<dir>l|s)(?P<mode>|s|ux|ox|uxe|oxe)"
    r"(?P<idx>e?i?)(?P<eew>8|16|32|64)\.v$")


def _parse_vmask(operands: list[str]) -> tuple[list[str], int]:
    """Strip a trailing ``v0.t`` mask operand; returns (operands, vm-bit)."""
    if operands and operands[-1].strip().lower() == "v0.t":
        return operands[:-1], 0
    return operands, 1


# ---------------------------------------------------------------------------
# Encoders per family
# ---------------------------------------------------------------------------

def _encode_r_type(mnemonic, operands, ctx):
    _require(operands, 3, mnemonic)
    opc, f3, f7 = _R_TYPE[mnemonic]
    return encode_r(opc, parse_int_reg(operands[0]), f3,
                    parse_int_reg(operands[1]), parse_int_reg(operands[2]),
                    f7)


def _encode_i_arith(mnemonic, operands, ctx):
    _require(operands, 3, mnemonic)
    opc, f3 = _I_ARITH[mnemonic]
    return encode_i(opc, parse_int_reg(operands[0]), f3,
                    parse_int_reg(operands[1]), ctx.resolve(operands[2]))


def _encode_shift_imm(mnemonic, operands, ctx):
    _require(operands, 3, mnemonic)
    opc, f3, f7_high, shamt_bits = _SHIFT_IMM[mnemonic]
    shamt = ctx.resolve(operands[2])
    if not 0 <= shamt < (1 << shamt_bits):
        raise EncodeError(f"{mnemonic} shift amount out of range: {shamt}")
    imm = (f7_high << 5) | shamt
    return encode_i(opc, parse_int_reg(operands[0]), f3,
                    parse_int_reg(operands[1]), imm)


def _encode_load(mnemonic, operands, ctx):
    _require(operands, 2, mnemonic)
    offset, base = parse_mem_operand(operands[1], ctx)
    return encode_i(op.LOAD, parse_int_reg(operands[0]), _LOADS[mnemonic],
                    base, offset)


def _encode_store(mnemonic, operands, ctx):
    _require(operands, 2, mnemonic)
    offset, base = parse_mem_operand(operands[1], ctx)
    return encode_s(op.STORE, _STORES[mnemonic], base,
                    parse_int_reg(operands[0]), offset)


def _encode_branch(mnemonic, operands, ctx):
    _require(operands, 3, mnemonic)
    return encode_b(op.BRANCH, _BRANCHES[mnemonic],
                    parse_int_reg(operands[0]), parse_int_reg(operands[1]),
                    _branch_offset(operands[2], ctx))


def _encode_lui_auipc(mnemonic, operands, ctx):
    _require(operands, 2, mnemonic)
    opc = op.LUI if mnemonic == "lui" else op.AUIPC
    return encode_u(opc, parse_int_reg(operands[0]),
                    ctx.resolve(operands[1]))


def _encode_jal(mnemonic, operands, ctx):
    if len(operands) == 1:  # jal label  ==  jal ra, label
        operands = ["ra"] + operands
    _require(operands, 2, mnemonic)
    return encode_j(op.JAL, parse_int_reg(operands[0]),
                    _branch_offset(operands[1], ctx))


def _encode_jalr(mnemonic, operands, ctx):
    if len(operands) == 1:  # jalr rs  ==  jalr ra, 0(rs)
        operands = ["ra", f"0({operands[0]})"]
    _require(operands, 2, mnemonic)
    if "(" in operands[1]:
        offset, base = parse_mem_operand(operands[1], ctx)
    else:
        raise EncodeError("jalr expects 'rd, offset(rs1)'")
    return encode_i(op.JALR, parse_int_reg(operands[0]), 0, base, offset)


def _encode_csr(mnemonic, operands, ctx):
    _require(operands, 3, mnemonic)
    d = parse_int_reg(operands[0])
    csr = parse_csr(operands[1])
    if mnemonic in _CSR_IMM:
        uimm = ctx.resolve(operands[2])
        if not 0 <= uimm < 32:
            raise EncodeError(f"CSR immediate out of range: {uimm}")
        word = encode_i(op.SYSTEM, d, _CSR_IMM[mnemonic], uimm, 0)
    else:
        word = encode_i(op.SYSTEM, d, _CSR_REG[mnemonic],
                        parse_int_reg(operands[2]), 0)
    return word | (csr << 20)


def _encode_amo(mnemonic, operands, ctx):
    base_name, _, size = mnemonic.rpartition(".")
    f3 = {"w": 2, "d": 3}[size]
    funct5 = _AMO_FUNCT5[base_name]
    if base_name == "lr":
        _require(operands, 2, mnemonic)
        _, addr_reg = parse_mem_operand(operands[1], ctx)
        return encode_r(op.AMO, parse_int_reg(operands[0]), f3, addr_reg, 0,
                        funct5 << 2)
    _require(operands, 3, mnemonic)
    _, addr_reg = parse_mem_operand(operands[2], ctx)
    return encode_r(op.AMO, parse_int_reg(operands[0]), f3, addr_reg,
                    parse_int_reg(operands[1]), funct5 << 2)


def _encode_fp_load(mnemonic, operands, ctx):
    _require(operands, 2, mnemonic)
    offset, base = parse_mem_operand(operands[1], ctx)
    width = 2 if mnemonic == "flw" else 3
    return encode_i(op.LOAD_FP, parse_fp_reg(operands[0]), width, base,
                    offset)


def _encode_fp_store(mnemonic, operands, ctx):
    _require(operands, 2, mnemonic)
    offset, base = parse_mem_operand(operands[1], ctx)
    width = 2 if mnemonic == "fsw" else 3
    return encode_s(op.STORE_FP, width, base, parse_fp_reg(operands[0]),
                    offset)


def _encode_fp_r(mnemonic, operands, ctx):
    _require(operands, 3, mnemonic)
    return encode_r(op.OP_FP, parse_fp_reg(operands[0]), 0,
                    parse_fp_reg(operands[1]), parse_fp_reg(operands[2]),
                    _FP_R[mnemonic])


def _encode_fp_sgnj(mnemonic, operands, ctx):
    _require(operands, 3, mnemonic)
    f7, f3 = _FP_SGNJ[mnemonic]
    return encode_r(op.OP_FP, parse_fp_reg(operands[0]), f3,
                    parse_fp_reg(operands[1]), parse_fp_reg(operands[2]), f7)


def _encode_fp_cmp(mnemonic, operands, ctx):
    _require(operands, 3, mnemonic)
    f7, f3 = _FP_CMP[mnemonic]
    return encode_r(op.OP_FP, parse_int_reg(operands[0]), f3,
                    parse_fp_reg(operands[1]), parse_fp_reg(operands[2]), f7)


def _encode_fsqrt(mnemonic, operands, ctx):
    _require(operands, 2, mnemonic)
    f7 = 0x2C if mnemonic.endswith(".s") else 0x2D
    return encode_r(op.OP_FP, parse_fp_reg(operands[0]), 0,
                    parse_fp_reg(operands[1]), 0, f7)


def _encode_fcvt(mnemonic, operands, ctx):
    _require(operands, 2, mnemonic)
    if mnemonic in _FP_CVT_TO_INT:
        f7, code = _FP_CVT_TO_INT[mnemonic]
        return encode_r(op.OP_FP, parse_int_reg(operands[0]), 0,
                        parse_fp_reg(operands[1]), code, f7)
    if mnemonic in _FP_CVT_FROM_INT:
        f7, code = _FP_CVT_FROM_INT[mnemonic]
        return encode_r(op.OP_FP, parse_fp_reg(operands[0]), 0,
                        parse_int_reg(operands[1]), code, f7)
    if mnemonic == "fcvt.s.d":
        return encode_r(op.OP_FP, parse_fp_reg(operands[0]), 0,
                        parse_fp_reg(operands[1]), 1, 0x20)
    if mnemonic == "fcvt.d.s":
        return encode_r(op.OP_FP, parse_fp_reg(operands[0]), 0,
                        parse_fp_reg(operands[1]), 0, 0x21)
    raise EncodeError(f"unknown conversion {mnemonic!r}")


def _encode_fmv(mnemonic, operands, ctx):
    _require(operands, 2, mnemonic)
    if mnemonic in ("fmv.x.w", "fmv.x.d"):
        f7 = 0x70 if mnemonic.endswith(".w") else 0x71
        return encode_r(op.OP_FP, parse_int_reg(operands[0]), 0,
                        parse_fp_reg(operands[1]), 0, f7)
    f7 = 0x78 if mnemonic == "fmv.w.x" else 0x79
    return encode_r(op.OP_FP, parse_fp_reg(operands[0]), 0,
                    parse_int_reg(operands[1]), 0, f7)


def _encode_fclass(mnemonic, operands, ctx):
    _require(operands, 2, mnemonic)
    f7 = 0x70 if mnemonic.endswith(".s") else 0x71
    return encode_r(op.OP_FP, parse_int_reg(operands[0]), 1,
                    parse_fp_reg(operands[1]), 0, f7)


def _encode_fma(mnemonic, operands, ctx):
    _require(operands, 4, mnemonic)
    base_name, _, size = mnemonic.rpartition(".")
    fmt = {"s": 0, "d": 1}[size]
    return encode_r4(_FMA[base_name], parse_fp_reg(operands[0]), 0,
                     parse_fp_reg(operands[1]), parse_fp_reg(operands[2]),
                     parse_fp_reg(operands[3]), fmt)


def _encode_vsetvli(mnemonic, operands, ctx):
    if len(operands) < 3:
        raise EncodeError("vsetvli expects rd, rs1, vtype...")
    vt = parse_vtype_tokens(operands[2:])
    word = encode_i(op.OP_V, parse_int_reg(operands[0]), 0b111,
                    parse_int_reg(operands[1]), 0)
    return word | ((vt.encode() & 0x7FF) << 20)


def _encode_vsetivli(mnemonic, operands, ctx):
    if len(operands) < 3:
        raise EncodeError("vsetivli expects rd, uimm, vtype...")
    vt = parse_vtype_tokens(operands[2:])
    uimm = ctx.resolve(operands[1])
    if not 0 <= uimm < 32:
        raise EncodeError(f"vsetivli uimm out of range: {uimm}")
    word = encode_i(op.OP_V, parse_int_reg(operands[0]), 0b111, uimm, 0)
    return word | (0b11 << 30) | ((vt.encode() & 0x3FF) << 20)


def _encode_vsetvl(mnemonic, operands, ctx):
    _require(operands, 3, mnemonic)
    return encode_r(op.OP_V, parse_int_reg(operands[0]), 0b111,
                    parse_int_reg(operands[1]), parse_int_reg(operands[2]),
                    0b1000000)


def _encode_vector_memop(mnemonic, operands, ctx):
    match = _VMEM_RE.match(mnemonic)
    if not match:
        raise EncodeError(f"unrecognised vector memory op {mnemonic!r}")
    is_load = match.group("dir") == "l"
    eew = int(match.group("eew"))
    mode = match.group("mode")
    operands, vm_bit = _parse_vmask(operands)
    vreg = parse_vec_reg(operands[0])
    offset, base = parse_mem_operand(operands[1], ctx)
    if offset:
        raise EncodeError(
            f"{mnemonic}: vector memory operands take no offset "
            f"(got {offset})")
    opc = op.LOAD_FP if is_load else op.STORE_FP
    width = EEW_TO_VMEM_WIDTH[eew]
    if mode == "":  # unit-stride
        _require(operands, 2, mnemonic)
        return encode_vector_mem(0, 0b00, vm_bit, 0, base, width, vreg, opc)
    if mode == "s":  # strided: third operand is the stride register
        _require(operands, 3, mnemonic)
        stride = parse_int_reg(operands[2])
        return encode_vector_mem(0, 0b10, vm_bit, stride, base, width, vreg,
                                 opc)
    # indexed: third operand is the index vector register
    _require(operands, 3, mnemonic)
    mop = 0b11 if mode.startswith("ox") else 0b01
    index = parse_vec_reg(operands[2])
    return encode_vector_mem(0, mop, vm_bit, index, base, width, vreg, opc)


def _encode_vector_arith_op(mnemonic, operands, ctx):
    base_name, _, shape = mnemonic.rpartition(".")
    operands, vm_bit = _parse_vmask(operands)
    if base_name in _V_OPI_FUNCT6:
        f6 = _V_OPI_FUNCT6[base_name]
        category = "i"
    elif base_name in _V_OPM_FUNCT6:
        f6 = _V_OPM_FUNCT6[base_name]
        category = "m"
    elif base_name in _V_OPF_FUNCT6:
        f6 = _V_OPF_FUNCT6[base_name]
        category = "f"
    else:
        raise EncodeError(f"unknown vector op {mnemonic!r}")
    _require(operands, 3, mnemonic)
    vd = parse_vec_reg(operands[0])
    if base_name in _V_MACC_ORDER:
        operands = [operands[0], operands[2], operands[1]]
    vs2 = parse_vec_reg(operands[1])
    if shape in ("vv", "vs"):
        f3 = {"i": 0b000, "m": 0b010, "f": 0b001}[category]
        vs1 = parse_vec_reg(operands[2])
    elif shape == "vx":
        f3 = {"i": 0b100, "m": 0b110}[category]
        vs1 = parse_int_reg(operands[2])
    elif shape == "vf":
        f3 = 0b101
        vs1 = parse_fp_reg(operands[2])
    elif shape == "vi":
        f3 = 0b011
        imm = ctx.resolve(operands[2])
        if base_name in _V_UNSIGNED_IMM:
            if not 0 <= imm < 32:
                raise EncodeError(f"{mnemonic} uimm out of range: {imm}")
            vs1 = imm
        else:
            if not -16 <= imm < 16:
                raise EncodeError(f"{mnemonic} simm out of range: {imm}")
            vs1 = imm & 0x1F
    else:
        raise EncodeError(f"unknown vector shape {mnemonic!r}")
    return encode_vector_arith(f6, vm_bit, vs2, vs1, f3, vd, op.OP_V)


def _encode_vmv_family(mnemonic, operands, ctx):
    _require(operands, 2, mnemonic)
    if mnemonic == "vmv.v.v":
        return encode_vector_arith(0x17, 1, 0, parse_vec_reg(operands[1]),
                                   0b000, parse_vec_reg(operands[0]), op.OP_V)
    if mnemonic == "vmv.v.x":
        return encode_vector_arith(0x17, 1, 0, parse_int_reg(operands[1]),
                                   0b100, parse_vec_reg(operands[0]), op.OP_V)
    if mnemonic == "vmv.v.i":
        imm = ctx.resolve(operands[1])
        if not -16 <= imm < 16:
            raise EncodeError(f"vmv.v.i immediate out of range: {imm}")
        return encode_vector_arith(0x17, 1, 0, imm & 0x1F, 0b011,
                                   parse_vec_reg(operands[0]), op.OP_V)
    if mnemonic == "vmv.x.s":
        return encode_vector_arith(0x10, 1, parse_vec_reg(operands[1]), 0,
                                   0b010, parse_int_reg(operands[0]), op.OP_V)
    if mnemonic == "vmv.s.x":
        return encode_vector_arith(0x10, 1, 0, parse_int_reg(operands[1]),
                                   0b110, parse_vec_reg(operands[0]), op.OP_V)
    if mnemonic == "vfmv.f.s":
        return encode_vector_arith(0x10, 1, parse_vec_reg(operands[1]), 0,
                                   0b001, parse_fp_reg(operands[0]), op.OP_V)
    if mnemonic == "vfmv.s.f":
        return encode_vector_arith(0x10, 1, 0, parse_fp_reg(operands[1]),
                                   0b101, parse_vec_reg(operands[0]), op.OP_V)
    if mnemonic == "vfmv.v.f":
        return encode_vector_arith(0x17, 1, 0, parse_fp_reg(operands[1]),
                                   0b101, parse_vec_reg(operands[0]), op.OP_V)
    raise EncodeError(f"unknown move {mnemonic!r}")


def _encode_vid(mnemonic, operands, ctx):
    operands, vm_bit = _parse_vmask(operands)
    _require(operands, 1, mnemonic)
    return encode_vector_arith(0x14, vm_bit, 0, 0b10001, 0b010,
                               parse_vec_reg(operands[0]), op.OP_V)


def _encode_viota(mnemonic, operands, ctx):
    operands, vm_bit = _parse_vmask(operands)
    _require(operands, 2, mnemonic)
    return encode_vector_arith(0x14, vm_bit, parse_vec_reg(operands[1]),
                               0b10000, 0b010, parse_vec_reg(operands[0]),
                               op.OP_V)


def _encode_vmerge(mnemonic, operands, ctx):
    # vmerge.vvm vd, vs2, vs1, v0  /  .vxm  /  .vim  /  vfmerge.vfm
    _require(operands, 4, mnemonic)
    if operands[3].strip().lower() != "v0":
        raise EncodeError(f"{mnemonic} mask operand must be v0")
    vd = parse_vec_reg(operands[0])
    vs2 = parse_vec_reg(operands[1])
    if mnemonic == "vmerge.vvm":
        return encode_vector_arith(0x17, 0, vs2, parse_vec_reg(operands[2]),
                                   0b000, vd, op.OP_V)
    if mnemonic == "vmerge.vxm":
        return encode_vector_arith(0x17, 0, vs2, parse_int_reg(operands[2]),
                                   0b100, vd, op.OP_V)
    if mnemonic == "vmerge.vim":
        imm = ctx.resolve(operands[2])
        return encode_vector_arith(0x17, 0, vs2, imm & 0x1F, 0b011, vd,
                                   op.OP_V)
    if mnemonic == "vfmerge.vfm":
        return encode_vector_arith(0x17, 0, vs2, parse_fp_reg(operands[2]),
                                   0b101, vd, op.OP_V)
    raise EncodeError(f"unknown merge {mnemonic!r}")


def _encode_la_hi(mnemonic, operands, ctx):
    """Internal: the AUIPC half of a ``la`` expansion."""
    _require(operands, 2, mnemonic)
    delta = ctx.resolve(operands[1]) - ctx.pc
    hi = (delta + 0x800) >> 12
    return encode_u(op.AUIPC, parse_int_reg(operands[0]), hi)


def _encode_la_lo(mnemonic, operands, ctx):
    """Internal: the ADDI half of a ``la`` expansion (auipc at pc-4)."""
    _require(operands, 2, mnemonic)
    delta = ctx.resolve(operands[1]) - (ctx.pc - 4)
    hi = (delta + 0x800) >> 12
    lo = delta - (hi << 12)
    reg = parse_int_reg(operands[0])
    return encode_i(op.OP_IMM, reg, 0, reg, lo)


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

_HANDLERS: dict[str, Callable] = {}
for _m in _R_TYPE:
    _HANDLERS[_m] = _encode_r_type
for _m in _I_ARITH:
    _HANDLERS[_m] = _encode_i_arith
for _m in _SHIFT_IMM:
    _HANDLERS[_m] = _encode_shift_imm
for _m in _LOADS:
    _HANDLERS[_m] = _encode_load
for _m in _STORES:
    _HANDLERS[_m] = _encode_store
for _m in _BRANCHES:
    _HANDLERS[_m] = _encode_branch
for _m in ("lui", "auipc"):
    _HANDLERS[_m] = _encode_lui_auipc
_HANDLERS["jal"] = _encode_jal
_HANDLERS["jalr"] = _encode_jalr
for _m in list(_CSR_REG) + list(_CSR_IMM):
    _HANDLERS[_m] = _encode_csr
for _base in _AMO_FUNCT5:
    for _sz in ("w", "d"):
        _HANDLERS[f"{_base}.{_sz}"] = _encode_amo
for _m in ("flw", "fld"):
    _HANDLERS[_m] = _encode_fp_load
for _m in ("fsw", "fsd"):
    _HANDLERS[_m] = _encode_fp_store
for _m in _FP_R:
    _HANDLERS[_m] = _encode_fp_r
for _m in _FP_SGNJ:
    _HANDLERS[_m] = _encode_fp_sgnj
for _m in _FP_CMP:
    _HANDLERS[_m] = _encode_fp_cmp
for _m in ("fsqrt.s", "fsqrt.d"):
    _HANDLERS[_m] = _encode_fsqrt
for _m in list(_FP_CVT_TO_INT) + list(_FP_CVT_FROM_INT) + \
        ["fcvt.s.d", "fcvt.d.s"]:
    _HANDLERS[_m] = _encode_fcvt
for _m in ("fmv.x.w", "fmv.x.d", "fmv.w.x", "fmv.d.x"):
    _HANDLERS[_m] = _encode_fmv
for _m in ("fclass.s", "fclass.d"):
    _HANDLERS[_m] = _encode_fclass
for _base in _FMA:
    for _sz in ("s", "d"):
        _HANDLERS[f"{_base}.{_sz}"] = _encode_fma
_HANDLERS["vsetvli"] = _encode_vsetvli
_HANDLERS["vsetivli"] = _encode_vsetivli
_HANDLERS["vsetvl"] = _encode_vsetvl
for _eew in (8, 16, 32, 64):
    for _prefix in ("vle", "vse", "vlse", "vsse"):
        name = f"{_prefix}{_eew}.v"
        _HANDLERS[name] = _encode_vector_memop
    for _ix in ("vluxei", "vloxei", "vsuxei", "vsoxei"):
        _HANDLERS[f"{_ix}{_eew}.v"] = _encode_vector_memop
for _base in _V_OPI_FUNCT6:
    for _shape in ("vv", "vx", "vi"):
        _HANDLERS[f"{_base}.{_shape}"] = _encode_vector_arith_op
for _base in _V_OPM_FUNCT6:
    _shapes = ("vs",) if _base.startswith("vred") else ("vv", "vx")
    for _shape in _shapes:
        _HANDLERS[f"{_base}.{_shape}"] = _encode_vector_arith_op
for _base in _V_OPF_FUNCT6:
    if _base.startswith(("vfred",)) or _base in ("vfredusum", "vfredosum"):
        _HANDLERS[f"{_base}.vs"] = _encode_vector_arith_op
    else:
        _HANDLERS[f"{_base}.vv"] = _encode_vector_arith_op
        _HANDLERS[f"{_base}.vf"] = _encode_vector_arith_op
for _m in ("vmv.v.v", "vmv.v.x", "vmv.v.i", "vmv.x.s", "vmv.s.x",
           "vfmv.f.s", "vfmv.s.f", "vfmv.v.f"):
    _HANDLERS[_m] = _encode_vmv_family
_HANDLERS["vid.v"] = _encode_vid
_HANDLERS["viota.m"] = _encode_viota
for _m in ("vmerge.vvm", "vmerge.vxm", "vmerge.vim", "vfmerge.vfm"):
    _HANDLERS[_m] = _encode_vmerge
_HANDLERS["la.hi"] = _encode_la_hi
_HANDLERS["la.lo"] = _encode_la_lo


def supported_mnemonics() -> frozenset[str]:
    """All directly encodable (non-pseudo) mnemonics."""
    return frozenset(_HANDLERS) | frozenset(_SYSTEM_FIXED)


def encode(mnemonic: str, operands: list[str], ctx: EncodeContext) -> int:
    """Encode one concrete (non-pseudo) instruction to a 32-bit word."""
    if mnemonic in _SYSTEM_FIXED:
        if operands:
            raise EncodeError(f"{mnemonic} takes no operands")
        return _SYSTEM_FIXED[mnemonic]
    handler = _HANDLERS.get(mnemonic)
    if handler is None:
        raise EncodeError(f"unknown mnemonic {mnemonic!r}")
    try:
        return handler(mnemonic, operands, ctx)
    except ValueError as exc:
        raise EncodeError(f"{mnemonic}: {exc}") from exc
