"""API-surface lint: every public name flows through ``repro.api``.

The facade contract (docs/API.md) says there is exactly one canonical
import path: a name is either exported by :mod:`repro.api`, declared
internal-but-stable by its package (``_LOCAL_NAMES``), or a deprecation
shim that forwards to a canonical name.  This tool fails (exit 1) the
moment a package gains a public name outside that contract, so API
drift is caught in CI instead of in a release note.

Checks, in order:

1. ``repro.api`` imports cleanly and every ``__all__`` name resolves.
2. For each facaded package (``repro.coyote``, ``repro.resilience``):
   every ``__all__`` name is covered by the facade or by the package's
   own internal declaration — and nothing is declared in both.
3. Re-exports are *identities*: ``repro.coyote.Simulation is
   repro.api.Simulation`` (two objects under one name would mean two
   canonical paths).
4. The registered deprecation shims still exist and still emit
   ``DeprecationWarning``.

Run it as ``python -m repro.tools.check_api``.
"""

from __future__ import annotations

import importlib
import sys
import warnings

FACADE = "repro.api"
FACADED_PACKAGES = ("repro.coyote", "repro.resilience", "repro.service")

# Deprecated spellings that must keep working (and warning) until their
# removal window closes: (module, attribute-path).
DEPRECATED_SHIMS = (
    ("repro.coyote.sweep", "SweepTable.format"),
    ("repro.coyote.config", "ConfigBuilder.noc_latency"),
    ("repro.resilience.faults", "load_fault_plan"),
)

# Names the facade is contractually required to export (subsystems that
# were announced public; losing one is an API break even if the routing
# bookkeeping stays self-consistent).
REQUIRED_FACADE_NAMES = (
    # the structured interconnect configuration
    "NocConfig",
    "RoutingPolicy",
    # the supervised campaign runtime
    "SupervisorPolicy",
    "RetryPolicy",
    "QuarantinedPoint",
    "AttemptRecord",
    "DegradationEvent",
    # guest-side performance introspection
    "GuestProfile",
    "CpiStack",
    "HotBlock",
    # the durable campaign service
    "submit",
    "status",
    "result",
    "cancel",
    "CampaignService",
    "JobStatus",
    "ServiceError",
    "QueueFullError",
    # the multi-node cluster tier
    "ClusterDispatcher",
    "ClusterNode",
    "ServiceFaultPlan",
    "StaleWriteError",
)


def _fail(errors: list[str]) -> int:
    for error in errors:
        print(f"check_api: {error}", file=sys.stderr)
    print(f"check_api: FAILED ({len(errors)} problem(s))",
          file=sys.stderr)
    return 1


def check() -> int:
    errors: list[str] = []

    api = importlib.import_module(FACADE)
    exported = set(getattr(api, "__all__", ()))
    if not exported:
        return _fail([f"{FACADE} declares no __all__"])
    for name in sorted(exported):
        if not hasattr(api, name):
            errors.append(f"{FACADE}.__all__ lists {name!r} but the "
                          f"module does not define it")
    for name in REQUIRED_FACADE_NAMES:
        if name not in exported:
            errors.append(f"{FACADE} no longer exports required public "
                          f"name {name!r}")

    for package_name in FACADED_PACKAGES:
        package = importlib.import_module(package_name)
        declared = set(getattr(package, "__all__", ()))
        via_api = set(getattr(package, "_API_NAMES", ()))
        local = set(getattr(package, "_LOCAL_NAMES", ()))
        if not via_api:
            errors.append(f"{package_name} declares no _API_NAMES "
                          f"facade routing")
            continue
        for name in sorted(via_api & local):
            errors.append(f"{package_name}: {name!r} is declared both "
                          f"facade-routed and internal")
        for name in sorted(via_api - exported):
            errors.append(f"{package_name} routes {name!r} through the "
                          f"facade, but {FACADE} does not export it")
        for name in sorted(declared - via_api - local):
            errors.append(f"{package_name} exports public name {name!r} "
                          f"that is neither routed through {FACADE} nor "
                          f"declared internal (_LOCAL_NAMES)")
        for name in sorted(via_api & exported):
            if getattr(package, name) is not getattr(api, name):
                errors.append(f"{package_name}.{name} is not the same "
                              f"object as {FACADE}.{name}")

    for module_name, attribute_path in DEPRECATED_SHIMS:
        module = importlib.import_module(module_name)
        target = module
        try:
            for part in attribute_path.split("."):
                target = getattr(target, part)
        except AttributeError:
            errors.append(f"deprecation shim {module_name}."
                          f"{attribute_path} has disappeared")
            continue
        if "deprecated" not in (target.__doc__ or "").lower():
            errors.append(f"deprecation shim {module_name}."
                          f"{attribute_path} no longer documents its "
                          f"deprecation")

    if errors:
        return _fail(errors)
    print(f"check_api: OK — {len(exported)} facade exports, "
          f"{len(FACADED_PACKAGES)} packages routed, "
          f"{len(DEPRECATED_SHIMS)} shims intact")
    return 0


def main() -> int:
    # Shims under test may warn during import-time probing; that is
    # exactly what we are checking for, not something to print.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return check()


if __name__ == "__main__":
    sys.exit(main())
