"""Developer tooling that ships with the package (API lint, ...)."""
