"""Coyote reproduction: an execution-driven RISC-V HPC simulator.

This package reproduces "Coyote: An Open Source Simulation Tool to Enable
RISC-V in HPC" (DATE 2021).  The headline API lives in :mod:`repro.coyote`.
"""

__version__ = "1.0.0"
