"""One tiny, shared deprecation shim helper.

Every renamed public entry point forwards through :func:`warn_deprecated`
so the message format is uniform and tests can assert on it.  The
warning names both spellings and fires on every call (callers that want
once-per-process behaviour get it from Python's default
``DeprecationWarning`` dedup by call site).
"""

from __future__ import annotations

import warnings


def warn_deprecated(old: str, new: str, *, stacklevel: int = 3) -> None:
    """Emit the standard rename warning: ``old`` is now spelled ``new``."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning, stacklevel=stacklevel)
