"""Fixed-width integer and bit-manipulation helpers.

Python integers are arbitrary precision, so every architectural value in the
simulator is kept as an *unsigned* integer of a known width and converted to
a signed view only at the point an instruction's semantics require it.  These
helpers centralise that discipline.
"""

from __future__ import annotations

MASK8 = 0xFF
MASK16 = 0xFFFF
MASK32 = 0xFFFF_FFFF
MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits (``mask(3) == 0b111``)."""
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def truncate(value: int, width: int = 64) -> int:
    """Truncate ``value`` to its low ``width`` bits (unsigned view)."""
    return value & mask(width)


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement.

    Returns a Python int that may be negative:

    >>> sign_extend(0xFF, 8)
    -1
    >>> sign_extend(0x7F, 8)
    127
    """
    if width <= 0:
        raise ValueError(f"sign_extend width must be positive, got {width}")
    value &= mask(width)
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


def to_signed(value: int, width: int = 64) -> int:
    """Unsigned ``width``-bit value -> signed Python int."""
    return sign_extend(value, width)


def to_unsigned(value: int, width: int = 64) -> int:
    """Signed Python int -> unsigned ``width``-bit representation."""
    return value & mask(width)


def bits(value: int, hi: int, lo: int) -> int:
    """Extract the inclusive bit-field ``value[hi:lo]``.

    >>> bits(0b110100, 5, 2)
    0b1101
    """
    if hi < lo:
        raise ValueError(f"bit range hi={hi} < lo={lo}")
    return (value >> lo) & mask(hi - lo + 1)


def bit(value: int, index: int) -> int:
    """Extract the single bit ``value[index]`` (0 or 1)."""
    return (value >> index) & 1


def set_bits(value: int, hi: int, lo: int, field: int) -> int:
    """Return ``value`` with the inclusive field ``[hi:lo]`` replaced."""
    if hi < lo:
        raise ValueError(f"bit range hi={hi} < lo={lo}")
    width = hi - lo + 1
    field &= mask(width)
    cleared = value & ~(mask(width) << lo)
    return cleared | (field << lo)


def is_power_of_two(value: int) -> bool:
    """True for 1, 2, 4, 8, ...; False for 0 and non-powers."""
    return value > 0 and (value & (value - 1)) == 0


def clog2(value: int) -> int:
    """Ceiling log2 for positive integers (``clog2(1) == 0``)."""
    if value <= 0:
        raise ValueError(f"clog2 requires a positive value, got {value}")
    return (value - 1).bit_length()


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of a power-of-two ``alignment``."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of a power-of-two ``alignment``."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


def is_aligned(value: int, alignment: int) -> bool:
    """True when ``value`` is a multiple of power-of-two ``alignment``."""
    return align_down(value, alignment) == value
