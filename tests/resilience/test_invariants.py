"""Invariant checker: clean runs pass, corrupted state is named."""

import pytest

from repro.coyote import Simulation, SimulationConfig
from repro.coyote.cli import make_workload
from repro.coyote.errors import SimulationError
from repro.resilience import InvariantChecker, InvariantViolation, \
    ResilienceConfig


def _paused_simulation(pause_at=400):
    workload = make_workload("scalar-matmul", cores=4, size=8)
    config = SimulationConfig.for_cores(4)
    simulation = Simulation(config, workload.program)
    assert simulation.run(pause_at=pause_at) is None
    return simulation


def _names(violations):
    return {entry["invariant"] for entry in violations}


class TestCleanRuns:
    def test_full_run_passes_every_check(self):
        workload = make_workload("scalar-matmul", cores=4, size=8)
        config = SimulationConfig.for_cores(4)
        config.resilience = ResilienceConfig(invariant_interval=100)
        simulation = Simulation(config, workload.program)
        results = simulation.run()
        assert results.succeeded()
        assert workload.verify(simulation.memory)
        assert simulation.orchestrator.invariants.checks_run > 0

    def test_checks_do_not_perturb_statistics(self):
        def run(interval):
            workload = make_workload("scalar-matmul", cores=4, size=8)
            config = SimulationConfig.for_cores(4)
            if interval:
                config.resilience = ResilienceConfig(
                    invariant_interval=interval)
            simulation = Simulation(config, workload.program)
            data = simulation.run().to_dict()
            for field in ("wall_seconds", "host_mips", "host_profile"):
                data.pop(field, None)
            return data
        assert run(0) == run(100)

    def test_paused_state_is_clean(self):
        simulation = _paused_simulation()
        checker = InvariantChecker(simulation.orchestrator, 1)
        assert checker.check(raise_on_violation=False) == []


class TestCorruptionDetection:
    def test_tampered_mshr_gauge(self):
        simulation = _paused_simulation()
        bank = simulation.orchestrator.hierarchy.banks[0]
        bank._stat_occupancy.add(1)
        checker = InvariantChecker(simulation.orchestrator, 1)
        violations = checker.check(raise_on_violation=False)
        assert "mshr_gauge" in _names(violations)

    def test_tampered_pending_gauge(self):
        simulation = _paused_simulation()
        bank = simulation.orchestrator.hierarchy.banks[0]
        bank._stat_queue.set(7)
        checker = InvariantChecker(simulation.orchestrator, 1)
        assert "pending_gauge" in _names(
            checker.check(raise_on_violation=False))

    def test_tampered_request_accounting(self):
        simulation = _paused_simulation()
        simulation.orchestrator.hierarchy._stat_submitted.increment()
        checker = InvariantChecker(simulation.orchestrator, 1)
        assert "request_conservation" in _names(
            checker.check(raise_on_violation=False))

    def test_fabricated_scoreboard_miss_is_an_orphan(self):
        simulation = _paused_simulation()
        scoreboard = simulation.orchestrator.scoreboard
        scoreboard.register_miss(2, (("x", 7),))
        checker = InvariantChecker(simulation.orchestrator, 1)
        violations = checker.check(raise_on_violation=False)
        assert "no_orphaned_misses" in _names(violations)
        orphan_entry = next(entry for entry in violations
                            if entry["invariant"] == "no_orphaned_misses")
        assert "core 2" in orphan_entry["detail"]

    def test_tampered_busy_registers(self):
        simulation = _paused_simulation()
        scoreboard = simulation.orchestrator.scoreboard
        scoreboard._busy[1][("f", 3)] = 1
        checker = InvariantChecker(simulation.orchestrator, 1)
        violations = checker.check(raise_on_violation=False)
        assert "scoreboard_refcounts" in _names(violations)
        entry = next(v for v in violations
                     if v["invariant"] == "scoreboard_refcounts")
        assert entry["component"] == "core1"

    def test_violation_raises_with_structure(self):
        simulation = _paused_simulation()
        bank = simulation.orchestrator.hierarchy.banks[0]
        bank._stat_occupancy.add(1)
        checker = InvariantChecker(simulation.orchestrator, 1)
        with pytest.raises(InvariantViolation) as exc_info:
            checker.check()
        error = exc_info.value
        assert isinstance(error, SimulationError)
        assert error.cycle == 400
        assert error.violations
        assert "mshr_gauge" in str(error)
        assert bank.path in error.violations[0]["detail"]


class TestCheckerMechanics:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            InvariantChecker(None, 0)

    def test_interval_gates_check_frequency(self):
        simulation = _paused_simulation()
        checker = InvariantChecker(simulation.orchestrator, 100)
        checker.maybe_check(50)     # before the first boundary
        assert checker.checks_run == 0
        checker.maybe_check(100)
        assert checker.checks_run == 1
        checker.maybe_check(150)    # inside the next window
        assert checker.checks_run == 1
        checker.maybe_check(205)
        assert checker.checks_run == 2
