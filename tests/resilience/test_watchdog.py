"""Forward-progress watchdog and deadlock diagnostics."""

import pytest

from repro.coyote import Simulation, SimulationConfig
from repro.coyote.cli import make_workload
from repro.coyote.errors import SimulationError
from repro.resilience import DeadlockError, FaultSpec, ResilienceConfig, \
    Watchdog, build_snapshot
from repro.resilience.watchdog import SOFT_WEDGE_FACTOR

# Drops every L2-bank response in the window: some core's completion is
# destroyed, so the run provably wedges.
DROP_PLAN = [FaultSpec(target="l2bank", kind="drop", start=300, end=500,
                       probability=0.5)]


def _wedged_simulation(watchdog_cycles=2000):
    workload = make_workload("scalar-matmul", cores=4, size=8)
    config = SimulationConfig.for_cores(4)
    config.resilience = ResilienceConfig(
        faults=list(DROP_PLAN), fault_seed=42,
        watchdog_cycles=watchdog_cycles)
    return Simulation(config, workload.program)


def _paused_simulation():
    workload = make_workload("scalar-matmul", cores=4, size=8)
    config = SimulationConfig.for_cores(4)
    simulation = Simulation(config, workload.program)
    assert simulation.run(pause_at=400) is None
    return simulation


class TestDeadlockDetection:
    def test_dropped_response_raises_deadlock_error(self):
        simulation = _wedged_simulation()
        with pytest.raises(DeadlockError) as exc_info:
            simulation.run()
        error = exc_info.value
        # The acceptance criterion: the error names the stuck cores and
        # the orphaned in-flight request.
        assert "stuck cores" in str(error)
        assert "orphaned in-flight request" in str(error)
        assert "miss" in str(error) and "core" in str(error)

    def test_deadlock_error_is_simulation_error(self):
        simulation = _wedged_simulation()
        with pytest.raises(SimulationError):
            simulation.run()

    def test_snapshot_structure(self):
        simulation = _wedged_simulation()
        with pytest.raises(DeadlockError) as exc_info:
            simulation.run()
        snapshot = exc_info.value.snapshot
        for key in ("reason", "cycle", "scheduler", "cores",
                    "pending_misses", "in_flight", "orphaned_misses",
                    "banks", "memory_controllers",
                    "hierarchy_outstanding"):
            assert key in snapshot, key
        assert snapshot["scheduler"]["pending_events"] == 0
        assert snapshot["orphaned_misses"], \
            "a dropped response must leave an orphaned scoreboard entry"
        stalled = [core for core in snapshot["cores"]
                   if core["state"] not in ("active", "halted")]
        assert stalled
        for core in stalled:
            assert core["stalled_for"] >= 0
            assert isinstance(core["pc"], int)

    def test_orphans_named_in_message_match_snapshot(self):
        simulation = _wedged_simulation()
        with pytest.raises(DeadlockError) as exc_info:
            simulation.run()
        error = exc_info.value
        for miss in error.snapshot["orphaned_misses"]:
            assert f"miss {miss['miss_id']} of core {miss['core_id']}" \
                in str(error)


class TestWatchdogUnit:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            Watchdog(0, None)

    def test_hard_wedge_trips_after_interval(self):
        simulation = _paused_simulation()
        watchdog = Watchdog(100, simulation.orchestrator)
        watchdog.observe(1000, 50, 10)
        watchdog.observe(1050, 50, 10)  # no progress, window not full
        with pytest.raises(DeadlockError, match="no instruction retired "
                                                "and no event fired"):
            watchdog.observe(1100, 50, 10)

    def test_progress_resets_the_window(self):
        simulation = _paused_simulation()
        watchdog = Watchdog(100, simulation.orchestrator)
        watchdog.observe(1000, 50, 10)
        watchdog.observe(1099, 51, 10)   # an instruction retired
        watchdog.observe(2000, 52, 10)   # window restarts from 1099
        watchdog.observe(2099, 52, 11)   # an event fired: still alive
        with pytest.raises(DeadlockError):
            watchdog.observe(2300, 52, 11)

    def test_soft_wedge_trips_on_event_storm(self):
        simulation = _paused_simulation()
        watchdog = Watchdog(100, simulation.orchestrator)
        cycle, events = 1000, 10
        watchdog.observe(cycle, 50, events)
        with pytest.raises(DeadlockError, match="soft-wedge"):
            # Events keep firing (never hard-wedged) but nothing
            # retires for SOFT_WEDGE_FACTOR * interval cycles.
            for _ in range(SOFT_WEDGE_FACTOR * 2):
                cycle += 99
                events += 1
                watchdog.observe(cycle, 50, events)

    def test_snapshot_of_healthy_simulation(self):
        simulation = _paused_simulation()
        snapshot = build_snapshot(simulation.orchestrator, "inspection")
        assert snapshot["reason"] == "inspection"
        assert snapshot["cycle"] == 400
        assert not snapshot["orphaned_misses"]
        assert len(snapshot["cores"]) == 4


class TestNocSnapshot:
    """The interconnect's congestion state rides every snapshot."""

    def test_crossbar_snapshot_reports_port_wires(self):
        simulation = _paused_simulation()
        noc = build_snapshot(simulation.orchestrator, "probe")["noc"]
        assert noc["topology"] == "crossbar"
        assert noc["ports"]  # traffic flowed by cycle 400
        assert all(isinstance(count, int)
                   for count in noc["ports"].values())

    def test_mesh_snapshot_reports_congestion_and_backlog(self):
        workload = make_workload("scalar-matmul", cores=4, size=8)
        config = SimulationConfig.for_cores(
            4, **{"noc.kind": "mesh", "noc.columns": 2,
                  "noc.link_capacity": 1})
        simulation = Simulation(config, workload.program)
        assert simulation.run(pause_at=400) is None
        snapshot = build_snapshot(simulation.orchestrator, "probe")
        noc = snapshot["noc"]
        assert noc["topology"] == "mesh"
        assert noc["injected"] >= noc["delivered"] >= 0
        assert noc["injected"] > 0
        assert noc["links"] and noc["routers"]
        # Live queue state: only links whose frontier is ahead of the
        # pause cycle appear, each with a positive backlog.
        for depth in noc["busy_links"].values():
            assert depth["backlog_cycles"] > 0
            assert depth["slots_used"] >= 1
        # The whole snapshot must stay JSON-safe: it is what the CLI
        # prints and campaign tooling persists on a deadlock.
        import json
        json.dumps(noc)

    def test_mesh_deadlock_snapshot_carries_noc_state(self):
        workload = make_workload("scalar-matmul", cores=4, size=8)
        config = SimulationConfig.for_cores(4, **{"noc.kind": "mesh",
                                                  "noc.columns": 2})
        config.resilience = ResilienceConfig(
            faults=list(DROP_PLAN), fault_seed=42,
            watchdog_cycles=2000)
        simulation = Simulation(config, workload.program)
        with pytest.raises(DeadlockError) as exc_info:
            simulation.run()
        noc = exc_info.value.snapshot["noc"]
        assert noc["topology"] == "mesh"
        assert noc["injected"] > 0
