"""Fault injection: determinism, functional correctness, plan loading."""

import hashlib
import json

import pytest

from repro.coyote import Simulation, SimulationConfig
from repro.coyote.cli import make_workload
from repro.resilience import FaultPlan, FaultSpec, ResilienceConfig

_HOST_FIELDS = ("wall_seconds", "host_mips", "host_profile")

TIMING_FAULTS = [
    FaultSpec(target="l2bank", kind="delay", extra=5, jitter=10,
              probability=0.3),
    FaultSpec(target="memctrl", kind="blackout", start=500, end=900),
    FaultSpec(target="noc", kind="duplicate", probability=0.2),
]


def _run(seed, faults, *, reference=False):
    workload = make_workload("scalar-matmul", cores=4, size=8)
    config = SimulationConfig.for_cores(4)
    config.resilience = ResilienceConfig(
        faults=[FaultSpec(**vars(spec)) for spec in faults],
        fault_seed=seed)
    simulation = Simulation(config, workload.program)
    simulation.orchestrator.use_reference_loop = reference
    results = simulation.run()
    data = results.to_dict()
    for field in _HOST_FIELDS:
        data.pop(field, None)
    return simulation, workload, data


def _digest(data) -> str:
    return hashlib.sha256(
        json.dumps(data, sort_keys=True, default=str).encode()).hexdigest()


class TestDeterminism:
    def test_same_seed_same_plan_bit_identical(self):
        _, _, first = _run(42, TIMING_FAULTS)
        _, _, second = _run(42, TIMING_FAULTS)
        assert _digest(first) == _digest(second)

    def test_different_seed_changes_timing(self):
        _, _, first = _run(42, TIMING_FAULTS)
        _, _, second = _run(43, TIMING_FAULTS)
        assert _digest(first) != _digest(second)

    def test_both_cycle_loops_agree_under_faults(self):
        _, _, fast = _run(42, TIMING_FAULTS, reference=False)
        _, _, ref = _run(42, TIMING_FAULTS, reference=True)
        assert fast == ref


class TestFunctionalCorrectness:
    def test_timing_faults_never_corrupt_results(self):
        for seed in (1, 2, 3):
            simulation, workload, data = _run(seed, TIMING_FAULTS)
            assert workload.verify(simulation.memory), \
                f"seed {seed} corrupted the functional result"
            assert simulation.results.succeeded()

    def test_faults_actually_fired(self):
        simulation, _, _ = _run(42, TIMING_FAULTS)
        injector = simulation.orchestrator.fault_injector
        values = {sample.name: sample.value
                  for sample in injector.stats.samples()}
        assert values["faults_delayed"] > 0
        assert values["fault_delay_cycles"] > 0
        assert values["faults_duplicated"] > 0
        assert values["faults_blacked_out"] > 0
        assert values["faults_dropped"] == 0

    def test_faults_perturb_timing_vs_baseline(self):
        _, _, faulty = _run(42, TIMING_FAULTS)
        _, _, clean = _run(42, [])
        assert faulty["cycles"] > clean["cycles"]

    def test_duplicate_fills_are_tolerated_and_counted(self):
        faults = [FaultSpec(target="noc", kind="duplicate",
                            probability=1.0)]
        simulation, workload, _ = _run(42, faults)
        assert workload.verify(simulation.memory)
        banks = simulation.orchestrator.hierarchy.all_cache_banks()
        assert all(bank.tolerate_spurious_fills for bank in banks)
        spurious = sum(bank._stat_spurious.value for bank in banks)
        assert spurious > 0

    def test_no_injector_without_faults(self):
        simulation, _, _ = _run(42, [])
        assert simulation.orchestrator.fault_injector is None
        assert simulation.orchestrator.hierarchy.noc.fault_hook is None


class TestFaultPlanLoading:
    def test_round_trip(self, tmp_path):
        document = {"seed": 7, "faults": [
            {"target": "l2bank", "kind": "delay", "extra": 3},
            {"target": "memctrl", "index": 1, "kind": "blackout",
             "start": 10, "end": 20},
        ]}
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(document))
        plan = FaultPlan.load(path)
        assert plan.seed == 7
        assert [spec.target for spec in plan.faults] \
            == ["l2bank", "memctrl"]
        assert plan.faults[1].index == 1
        saved = FaultPlan.load(plan.save(tmp_path / "copy.json"))
        assert saved == plan

    def test_plan_without_seed(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"faults": []}')
        plan = FaultPlan.load(path)
        assert plan.faults == [] and plan.seed is None

    def test_rejects_non_object(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="faults"):
            FaultPlan.load(path)

    def test_rejects_bad_seed(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"seed": -1, "faults": []}')
        with pytest.raises(ValueError, match="seed"):
            FaultPlan.load(path)

    def test_apply_installs_faults_and_seed(self):
        plan = FaultPlan(faults=[FaultSpec(target="l2bank",
                                           kind="delay", extra=3)],
                         seed=11)
        resilience = ResilienceConfig(fault_seed=99)
        plan.apply(resilience)
        assert resilience.faults == plan.faults
        assert resilience.fault_seed == 11

    def test_apply_preserves_config_seed_when_unpinned(self):
        plan = FaultPlan(faults=[])
        resilience = ResilienceConfig(fault_seed=99)
        plan.apply(resilience)
        assert resilience.fault_seed == 99


class TestSpecValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec(target="l2bank", kind="scramble").validate()

    def test_rejects_unknown_target(self):
        with pytest.raises(ValueError):
            FaultSpec(target="l1", kind="delay").validate()

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            FaultSpec(target="noc", kind="delay",
                      probability=1.5).validate()

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            FaultSpec(target="noc", kind="delay", start=100,
                      end=50).validate()
