"""Error-path coverage: traps, config rejection, sweep failure
isolation, structured scheduler errors, and the CLI exit-code taxonomy."""

import json
import os
import subprocess
import sys

import pytest

from repro.assembler import assemble
from repro.coyote import cli
from repro.coyote.config import SimulationConfig
from repro.coyote.errors import SimulationError
from repro.coyote.orchestrator import Orchestrator
from repro.coyote.sweep import Sweep, SweepTable
from repro.kernels import scalar_matmul
from repro.resilience import ResilienceConfig
from repro.sparta.scheduler import Scheduler, SchedulerError

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


class TestTrapHandling:
    def test_illegal_instruction_becomes_simulation_error(self):
        program = assemble(""".text
_start:
    nop
    .word 0
""")
        orchestrator = Orchestrator(SimulationConfig.for_cores(1),
                                    program)
        with pytest.raises(SimulationError, match="core 0"):
            orchestrator.run()


class TestConfigRejection:
    def test_bad_l2_mode(self):
        with pytest.raises(ValueError, match="l2_mode"):
            SimulationConfig.for_cores(4, l2_mode="bogus")

    def test_bad_max_cycles(self):
        with pytest.raises(ValueError, match="max_cycles"):
            SimulationConfig.for_cores(4, max_cycles=0)

    def test_resilience_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown resilience"):
            ResilienceConfig.from_dict({"watchdog_cylces": 100})

    def test_resilience_rejects_negative_knobs(self):
        with pytest.raises(ValueError):
            ResilienceConfig(watchdog_cycles=-1).validate()
        with pytest.raises(ValueError):
            ResilienceConfig(fault_seed=-1).validate()


class TestSweepFailureIsolation:
    def _sweep(self):
        # max_cycles=60 cannot finish the kernel: a budget
        # SimulationError fails that point; the other point succeeds.
        return Sweep(base_cores=2,
                     axes={"max_cycles": [60, 2_000_000]})

    def test_on_error_raise_aborts(self):
        with pytest.raises(SimulationError):
            self._sweep().run(
                lambda: scalar_matmul(size=6, num_cores=2))

    def test_on_error_skip_records_and_continues(self):
        table = self._sweep().run(
            lambda: scalar_matmul(size=6, num_cores=2), on_error="skip")
        assert len(table.points) == 2
        failures = table.failures()
        assert len(failures) == 1
        settings, error = failures[0]
        assert settings == {"max_cycles": 60}
        assert isinstance(error, SimulationError)
        good = table.best("cycles")
        assert good.settings == {"max_cycles": 2_000_000}
        assert not good.failed

    def test_format_marks_failed_points(self):
        table = self._sweep().run(
            lambda: scalar_matmul(size=6, num_cores=2), on_error="skip")
        rendered = table.to_text(metrics=("cycles", "instructions"))
        assert "FAILED(SimulationError)" in rendered

    def test_failed_point_metric_raises(self):
        table = self._sweep().run(
            lambda: scalar_matmul(size=6, num_cores=2), on_error="skip")
        failed = next(point for point in table.points if point.failed)
        with pytest.raises(ValueError, match="failed"):
            failed.metric("cycles")

    def test_rejects_unknown_on_error(self):
        with pytest.raises(ValueError, match="on_error"):
            self._sweep().run(
                lambda: scalar_matmul(size=6, num_cores=2),
                on_error="ignore")

    def test_best_on_empty_sweep(self):
        with pytest.raises(ValueError, match="empty sweep"):
            SweepTable(axes={"x": [1]}).best()

    def test_best_when_every_point_failed(self):
        table = Sweep(base_cores=2, axes={"max_cycles": [50, 60]}).run(
            lambda: scalar_matmul(size=6, num_cores=2), on_error="skip")
        assert len(table.failures()) == 2
        with pytest.raises(ValueError, match="all 2 sweep points"):
            table.best()


class TestSchedulerErrorStructure:
    def test_past_scheduling_carries_context(self):
        scheduler = Scheduler()
        scheduler.schedule(lambda: None, 5)
        with pytest.raises(SchedulerError) as exc_info:
            scheduler.schedule(lambda: None, -1)
        error = exc_info.value
        assert error.current_cycle == 0
        assert error.pending_events == 1
        assert error.next_event_cycle == 5

    def test_rewind_carries_context(self):
        scheduler = Scheduler()
        scheduler.schedule(lambda: None, 3)
        scheduler.run_until_idle()
        assert scheduler.current_cycle >= 3
        scheduler.schedule(lambda: None, 10)
        with pytest.raises(SchedulerError) as exc_info:
            scheduler.advance_to(0)
        error = exc_info.value
        assert error.current_cycle == scheduler.current_cycle
        assert error.pending_events == 1
        assert error.next_event_cycle == scheduler.current_cycle + 10


class TestCliExitCodes:
    ARGS = ["--kernel", "scalar-matmul", "--cores", "2", "--size", "6"]

    def test_success_is_zero(self, capsys):
        assert cli.main(self.ARGS) == cli.EXIT_OK
        capsys.readouterr()

    def test_bad_flag_is_two(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            cli.main(["--kernel", "no-such-kernel"])
        assert exc_info.value.code == cli.EXIT_CONFIG
        capsys.readouterr()

    def test_bad_config_file_is_two(self, tmp_path, capsys):
        config = tmp_path / "bad.json"
        config.write_text('{"no_such_field": 1}')
        assert cli.main(["--config", str(config)]) == cli.EXIT_CONFIG
        assert "configuration error" in capsys.readouterr().err

    def test_bad_fault_plan_is_two(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text('{"faults": [{"target": "warp-core"}]}')
        assert cli.main(self.ARGS + ["--inject", str(plan)]) \
            == cli.EXIT_CONFIG
        assert "configuration error" in capsys.readouterr().err

    def test_deadlock_is_four(self, tmp_path, capsys):
        plan = tmp_path / "drop.json"
        plan.write_text(json.dumps({"seed": 42, "faults": [
            {"target": "l2bank", "kind": "drop", "start": 300,
             "end": 500, "probability": 0.5}]}))
        code = cli.main(["--kernel", "scalar-matmul", "--cores", "4",
                        "--size", "8", "--inject", str(plan),
                        "--watchdog", "2000"])
        assert code == cli.EXIT_DEADLOCK
        err = capsys.readouterr().err
        assert "DEADLOCK" in err and "orphaned" in err

    def test_verify_failure_is_three(self, capsys, monkeypatch):
        real_make_workload = cli.make_workload

        class Unverifiable:
            def __init__(self, inner):
                self._inner = inner
                self.name = inner.name
                self.program = inner.program

            def verify(self, memory):
                return False

        monkeypatch.setattr(
            cli, "make_workload",
            lambda *args, **kwargs: Unverifiable(
                real_make_workload(*args, **kwargs)))
        assert cli.main(self.ARGS) == cli.EXIT_VERIFY
        assert "FAILED" in capsys.readouterr().err

    def test_interrupt_is_130_with_partial_dump(self, capsys,
                                                monkeypatch):
        from repro.coyote.simulation import Simulation

        def interrupted_run(self, pause_at=None):
            raise KeyboardInterrupt

        monkeypatch.setattr(Simulation, "run", interrupted_run)
        assert cli.main(self.ARGS) == cli.EXIT_INTERRUPT
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "cycle" in err

    def test_checkpoint_resume_round_trip(self, tmp_path, capsys):
        ckpt = tmp_path / "sim.ckpt"
        code = cli.main(self.ARGS + ["--pause-at", "500",
                                     "--checkpoint-out", str(ckpt)])
        assert code == cli.EXIT_OK
        assert "checkpoint written" in capsys.readouterr().out
        assert ckpt.exists()
        assert cli.main(["--resume", str(ckpt)]) == cli.EXIT_OK
        out = capsys.readouterr().out
        assert "output verified      : True" in out

    def test_checkpoint_flags_must_pair(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            cli.main(self.ARGS + ["--pause-at", "500"])
        assert exc_info.value.code == cli.EXIT_CONFIG
        capsys.readouterr()

    def test_taxonomy_via_subprocess(self, tmp_path):
        """The documented contract, exercised end-to-end: real process,
        real exit codes."""
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"))

        def run(*extra):
            return subprocess.run(
                [sys.executable, "-m", "repro.coyote.cli", *extra],
                capture_output=True, text=True, env=env, timeout=120)

        ok = run("--kernel", "scalar-matmul", "--cores", "2",
                 "--size", "6")
        assert ok.returncode == 0, ok.stderr

        bad = run("--no-such-flag")
        assert bad.returncode == 2

        plan = tmp_path / "drop.json"
        plan.write_text(json.dumps({"seed": 42, "faults": [
            {"target": "l2bank", "kind": "drop", "start": 300,
             "end": 500, "probability": 0.5}]}))
        wedged = run("--kernel", "scalar-matmul", "--cores", "4",
                     "--size", "8", "--inject", str(plan),
                     "--watchdog", "2000")
        assert wedged.returncode == 4, wedged.stderr
        assert "DEADLOCK" in wedged.stderr
