"""Chaos harness for the supervised campaign runtime.

The guarantees under test (docs/RESILIENCE.md):

* **Termination** — a campaign containing a wedged point (infinite
  loop), a leaking point (RSS past the ceiling), a crashing point and a
  silent point (heartbeats stop) completes, with every poison point
  quarantined after bounded retries.
* **Determinism** — healthy points of a supervised campaign are
  bit-identical to a serial run, and retry backoff replays exactly
  under a fixed seed.
* **Durability** — quarantine records (full attempt history) survive
  the campaign checkpoint round-trip, and a warm restart never
  re-executes a quarantined point.
* **Degradation** — repeated pool-level failures step the worker count
  down instead of aborting, all the way to a serial floor.
"""

import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import QuarantinedPoint, RetryPolicy, SupervisorPolicy
from repro.coyote import cli
from repro.coyote.parallel import ParallelSweep, WorkerCrash, axes_key
from repro.coyote.sweep import Sweep
from repro.kernels import vector_axpy
from repro.resilience import supervisor as supervision
from repro.resilience.checkpoint import load_campaign

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DIFFERENTIAL_METRICS = ("cycles", "instructions", "l1d_miss_rate")

# Chaos modes, keyed off the noc.latency axis value (any int is a valid
# latency, so the sweep configuration itself stays legal).
HEALTHY = (2, 6)
WEDGE = 31     # infinite loop; heartbeats keep flowing -> timeout
LEAK = 33      # RSS climbs past the ceiling -> rss-exceeded
CRASH = 35     # os._exit(9) -> crash
SILENT = 37    # wedge AND heartbeats stop -> heartbeat-lost


def _healthy_workload():
    return vector_axpy(length=32, num_cores=2)


def chaos_factory(settings):
    """Settings-aware factory with artificial failure modes."""
    mode = settings.get("noc.latency")
    if mode == WEDGE:
        while True:
            time.sleep(0.05)
    if mode == LEAK:
        hoard = []
        while True:
            block = bytearray(8 * (1 << 20))
            for i in range(0, len(block), 4096):  # commit the pages
                block[i] = 1
            hoard.append(block)
            time.sleep(0.01)
    if mode == CRASH:
        os._exit(9)
    if mode == SILENT:
        supervision.suppress_heartbeats()
        while True:
            time.sleep(0.05)
    return _healthy_workload()


def chaos_policy(**overrides) -> SupervisorPolicy:
    base = dict(point_timeout_seconds=2.0,
                heartbeat_interval_seconds=0.05,
                heartbeat_misses=4,
                retry=RetryPolicy(max_attempts=2, base_delay=0.05,
                                  max_delay=0.1),
                term_grace_seconds=0.5,
                seed=11)
    base.update(overrides)
    return SupervisorPolicy(**base)


@pytest.fixture(scope="module")
def chaos_run(tmp_path_factory):
    """One chaos campaign, run once and dissected by several tests."""
    campaign = tmp_path_factory.mktemp("chaos") / "chaos.campaign"
    axes = {"noc.latency": [HEALTHY[0], WEDGE, LEAK, CRASH, SILENT,
                            HEALTHY[1]]}
    sweep = Sweep(base_cores=2, axes=axes)
    policy = chaos_policy(max_rss_mb=supervision.worker_rss_mb() + 64)
    table = sweep.run(chaos_factory, workers=3, on_error="skip",
                      campaign_path=campaign, policy=policy)
    return sweep, policy, campaign, table


class TestChaosCampaign:
    def test_campaign_terminates_with_poison_points_quarantined(
            self, chaos_run):
        _sweep, _policy, _campaign, table = chaos_run
        by_mode = {point.settings["noc.latency"]: point
                   for point in table.points}
        for mode in HEALTHY:
            assert not by_mode[mode].failed
        for mode in (WEDGE, LEAK, CRASH, SILENT):
            point = by_mode[mode]
            assert point.error_kind == "QuarantinedPoint"
            assert isinstance(point.error, QuarantinedPoint)
            assert [record.attempt for record in point.error.attempts] \
                == [1, 2]
        assert len(table.quarantined()) == 4
        assert table.aggregate()["quarantined"] == 4

    def test_attempt_outcomes_match_failure_modes(self, chaos_run):
        *_rest, table = chaos_run
        by_mode = {point.settings["noc.latency"]: point
                   for point in table.points}
        wedge = by_mode[WEDGE].error.attempts
        assert [record.outcome for record in wedge] \
            == ["timeout", "timeout"]
        # A reaped worker died by SIGTERM: exit code -15, signal 15.
        assert all(record.signal == signal.SIGTERM for record in wedge)
        # The wedge kept heartbeating right until the reap.
        assert wedge[0].heartbeats
        leak = by_mode[LEAK].error.attempts
        assert leak[-1].outcome == "rss-exceeded"
        assert all(record.outcome in ("rss-exceeded", "heartbeat-lost")
                   for record in leak)
        crash = by_mode[CRASH].error.attempts
        assert [record.outcome for record in crash] == ["crash", "crash"]
        assert [record.exit_code for record in crash] == [9, 9]
        silent = by_mode[SILENT].error.attempts
        assert [record.outcome for record in silent] \
            == ["heartbeat-lost", "heartbeat-lost"]

    def test_healthy_points_bit_identical_to_serial(self, chaos_run):
        *_rest, table = chaos_run
        serial = Sweep(base_cores=2,
                       axes={"noc.latency": list(HEALTHY)}).run(
            chaos_factory, workers=1)
        serial_points = {point["settings"]["noc.latency"]: point
                         for point in
                         serial.to_dict(DIFFERENTIAL_METRICS)["points"]}
        supervised_points = {point["settings"]["noc.latency"]: point
                             for point in
                             table.to_dict(DIFFERENTIAL_METRICS)["points"]}
        for mode in HEALTHY:
            assert supervised_points[mode] == serial_points[mode]

    def test_quarantine_is_durable_across_warm_restart(self, chaos_run):
        sweep, policy, campaign, table = chaos_run

        def poisoned_factory(settings):
            raise AssertionError(
                "a quarantined or completed point was re-executed on "
                "warm restart")

        resumed = sweep.run(poisoned_factory, workers=3, on_error="skip",
                            campaign_path=campaign, policy=policy)
        assert resumed.to_dict(DIFFERENTIAL_METRICS) \
            == table.to_dict(DIFFERENTIAL_METRICS)
        # The attempt history survives the checkpoint round-trip whole.
        for before, after in zip(table.quarantined(),
                                 resumed.quarantined()):
            assert [(r.attempt, r.outcome, r.exit_code, r.signal)
                    for r in before.error.attempts] \
                == [(r.attempt, r.outcome, r.exit_code, r.signal)
                    for r in after.error.attempts]

    def test_quarantine_does_not_fail_the_cli_exit_code(self, chaos_run):
        *_rest, table = chaos_run
        assert cli.sweep_exit_code(table) == cli.EXIT_OK

    def test_quarantined_error_pickles_whole(self, chaos_run):
        *_rest, table = chaos_run
        error = table.quarantined()[0].error
        clone = pickle.loads(pickle.dumps(error))
        assert str(clone) == str(error)
        assert [r.outcome for r in clone.attempts] \
            == [r.outcome for r in error.attempts]


class TestRetryDeterminism:
    def test_backoff_replays_under_a_fixed_seed(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.5, max_delay=4.0)
        first = [policy.backoff_seconds(k, seed=7, index=3)
                 for k in (1, 2, 3)]
        second = [policy.backoff_seconds(k, seed=7, index=3)
                  for k in (1, 2, 3)]
        assert first == second
        assert first != [policy.backoff_seconds(k, seed=8, index=3)
                         for k in (1, 2, 3)]

    def test_backoff_is_exponential_and_bounded(self):
        policy = RetryPolicy(max_attempts=8, base_delay=0.5, max_delay=4.0)
        for attempt in range(1, 8):
            span = min(4.0, 0.5 * 2 ** (attempt - 1))
            value = policy.backoff_seconds(attempt, seed=1, index=0)
            assert span / 2 <= value <= span
        assert RetryPolicy(base_delay=0.0).backoff_seconds(1) == 0.0

    def test_transient_crash_is_retried_to_success(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("COYOTE_FLAKY_FLAG", str(tmp_path / "flag"))
        sweep = Sweep(base_cores=2, axes={"noc.latency": [13, 2]})
        table = sweep.run(_flaky_factory, workers=2, on_error="skip",
                          policy=chaos_policy())
        assert not any(point.failed for point in table.points)
        engine = ParallelSweep(sweep, workers=2, on_error="skip",
                               policy=chaos_policy())
        table = engine.run(_flaky_factory)  # flag exists: no crash now
        assert engine.monitor.counters["retries"] == 0


def _flaky_factory(settings):
    """Crashes the first time the poisoned point runs, then recovers."""
    if settings.get("noc.latency") == 13:
        flag = os.environ["COYOTE_FLAKY_FLAG"]
        if not os.path.exists(flag):
            open(flag, "w").close()
            os._exit(7)
    return _healthy_workload()


def _stderr_crasher(settings):
    if settings.get("noc.latency") == 7:
        print("boom: allocator exploded at bank 3", file=sys.stderr,
              flush=True)
        os._exit(9)
    return _healthy_workload()


class TestStderrTail:
    def test_worker_crash_attaches_stderr_tail(self):
        table = Sweep(base_cores=2, axes={"noc.latency": [2, 7]}).run(
            _stderr_crasher, workers=2, on_error="skip")
        crashed = table.points[1]
        assert crashed.error_kind == "WorkerCrash"
        assert "exit code 9" in str(crashed.error)
        assert "allocator exploded at bank 3" in crashed.error.stderr_tail
        clone = pickle.loads(pickle.dumps(crashed.error))
        assert "allocator exploded" in clone.stderr_tail

    def test_quarantine_reuses_the_stderr_plumbing(self):
        table = Sweep(base_cores=2, axes={"noc.latency": [7]}).run(
            _stderr_crasher, workers=2, on_error="skip",
            policy=chaos_policy())
        attempts = table.points[0].error.attempts
        assert all("allocator exploded" in record.stderr_tail
                   for record in attempts)


class TestDegradation:
    def test_spawn_failures_step_the_pool_down(self, monkeypatch):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [2, 4, 6, 8]})
        engine = ParallelSweep(sweep, workers=4, on_error="skip",
                               policy=SupervisorPolicy(degrade_after=1))
        real_spawn = ParallelSweep._spawn
        failures = {"left": 2}

        def flaky_spawn(self, *args, **kwargs):
            if failures["left"]:
                failures["left"] -= 1
                raise OSError("fork: Resource temporarily unavailable")
            return real_spawn(self, *args, **kwargs)

        monkeypatch.setattr(ParallelSweep, "_spawn", flaky_spawn)
        table = engine.run(_healthy_factory)
        assert [(event.from_workers, event.to_workers)
                for event in table.degradations] == [(4, 2), (2, 1)]
        assert not any(point.failed for point in table.points)

    def test_degrades_all_the_way_to_serial(self, monkeypatch):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [2, 6]})
        engine = ParallelSweep(sweep, workers=2, on_error="skip",
                               policy=SupervisorPolicy(degrade_after=1))

        def broken_spawn(self, *args, **kwargs):
            raise OSError("fork: Cannot allocate memory")

        monkeypatch.setattr(ParallelSweep, "_spawn", broken_spawn)
        table = engine.run(_healthy_factory)
        assert [event.to_workers for event in table.degradations][-1] == 0
        assert not any(point.failed for point in table.points)
        serial = Sweep(base_cores=2, axes={"noc.latency": [2, 6]}).run(
            _healthy_factory, workers=1)
        assert table.to_dict(DIFFERENTIAL_METRICS) \
            == serial.to_dict(DIFFERENTIAL_METRICS)

    def test_degrade_after_zero_propagates_spawn_failures(
            self, monkeypatch):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [2]})
        engine = ParallelSweep(
            sweep, workers=2, on_error="skip",
            policy=SupervisorPolicy(degrade_after=0,
                                    point_timeout_seconds=30.0))

        def broken_spawn(self, *args, **kwargs):
            raise OSError("fork: Cannot allocate memory")

        monkeypatch.setattr(ParallelSweep, "_spawn", broken_spawn)
        with pytest.raises(OSError, match="Cannot allocate"):
            engine.run(_healthy_factory)


def _healthy_factory(settings):
    return _healthy_workload()


class TestObservability:
    def test_heartbeat_gauges_and_attempt_spans(self):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [2, 6]})
        engine = ParallelSweep(
            sweep, workers=2, on_error="skip",
            policy=chaos_policy(heartbeat_interval_seconds=0.02))
        table = engine.run(_healthy_factory)
        assert not any(point.failed for point in table.points)
        counters = engine.monitor.counters
        # Every attempt sends one heartbeat immediately on startup.
        assert counters["attempts"] == 2
        assert counters["heartbeats"] >= 2
        assert counters["retries"] == 0 and counters["quarantined"] == 0
        for gauge in engine.monitor.heartbeat_gauges.values():
            assert gauge["rss_mb"] > 0
        events = engine.monitor.chrome_trace()["traceEvents"]
        assert len(events) == 2
        assert all(event["ph"] == "X" and event["args"]["outcome"] == "ok"
                   for event in events)

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="point_timeout"):
            SupervisorPolicy(point_timeout_seconds=0.0).validate()
        with pytest.raises(ValueError, match="max_rss_mb"):
            SupervisorPolicy(max_rss_mb=-1.0).validate()
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0).validate()
        with pytest.raises(ValueError, match="max_delay"):
            RetryPolicy(base_delay=2.0, max_delay=1.0).validate()

    def test_unsupervised_policy_keeps_worker_crash(self):
        # Without supervision knobs a dead worker stays a WorkerCrash
        # (the pre-supervisor contract), never a quarantine record.
        assert not SupervisorPolicy().supervised
        table = Sweep(base_cores=2, axes={"noc.latency": [7]}).run(
            _stderr_crasher, workers=2, on_error="skip")
        assert isinstance(table.points[0].error, WorkerCrash)


class TestSigintDrain:
    def test_sigint_drains_pool_and_writes_partial_campaign(
            self, tmp_path):
        campaign = tmp_path / "sigint.campaign"
        command = [
            sys.executable, "-m", "repro.coyote.cli", "sweep",
            "--kernel", "scalar-matmul", "--cores", "2", "--size", "10",
            "--axes", "noc.latency=2,3,4,5,6,7,8,9",
            "--workers", "2", "--on-error", "skip",
            "--campaign", str(campaign)]
        env = dict(os.environ,
                   PYTHONPATH=str(REPO_ROOT / "src"))
        process = subprocess.Popen(
            command, env=env, cwd=REPO_ROOT, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if campaign.exists() or process.poll() is not None:
                    break
                time.sleep(0.05)
            assert process.poll() is None, process.communicate()[1]
            assert campaign.exists()
            process.send_signal(signal.SIGINT)
            _stdout, stderr = process.communicate(timeout=120)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == cli.EXIT_INTERRUPT, stderr
        assert "interrupted" in stderr
        # The partial campaign survived the interrupt and warm-starts.
        axes = {"noc.latency": [2, 3, 4, 5, 6, 7, 8, 9]}
        completed = load_campaign(campaign, axes_key(axes))
        assert completed  # at least the first finished point
        assert len(completed) < 8  # ... but the sweep was cut short
