"""Campaign checkpoint durability: checksums, locks, kill-mid-write.

Three properties of the warm-start campaign file: silent on-disk
corruption is detected on load (structured ``CampaignCorruptError``
naming the offending file) and treated as a cold start, never a wrong
answer; two processes pointed at one campaign file fail fast on the
advisory lock instead of interleaving checkpoints; and a SIGKILL mid
checkpoint-write leaves the previous consistent snapshot, from which a
warm restart completes bit-identical to an uninterrupted run.
"""

import logging
import os
import subprocess
import sys

import pytest

from repro.coyote.parallel import axes_key
from repro.coyote.sweep import Sweep
from repro.kernels import vector_axpy
from repro.resilience.checkpoint import (
    CampaignCorruptError,
    load_campaign,
    save_campaign,
)
from repro.resilience.locking import CampaignLockError, PathLock

AXES = {"noc.latency": [2, 6]}
METRICS = ("cycles", "instructions", "l1d_miss_rate")

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def make_axpy(settings=None):
    return vector_axpy(length=32, num_cores=2)


def run_campaign(campaign_path, factory=make_axpy, workers=1):
    sweep = Sweep(base_cores=2, axes=dict(AXES))
    return sweep.run(factory, workers=workers, on_error="skip",
                     campaign_path=campaign_path)


def reference_table():
    return Sweep(base_cores=2, axes=dict(AXES)).run(make_axpy, workers=1)


class TestCampaignIntegrity:
    def test_flipped_bit_is_a_structured_error_with_the_path(
            self, tmp_path):
        campaign = tmp_path / "axpy.campaign"
        run_campaign(campaign)
        blob = bytearray(campaign.read_bytes())
        blob[-3] ^= 0xFF
        campaign.write_bytes(bytes(blob))
        with pytest.raises(CampaignCorruptError, match="checksum") as info:
            load_campaign(campaign, axes_key(AXES))
        assert info.value.path == campaign

    def test_truncated_file_is_a_structured_error(self, tmp_path):
        campaign = tmp_path / "axpy.campaign"
        run_campaign(campaign)
        campaign.write_bytes(campaign.read_bytes()[:-20])
        with pytest.raises(CampaignCorruptError, match="checksum") as info:
            load_campaign(campaign, axes_key(AXES))
        assert info.value.path == campaign

    def test_corrupt_checkpoint_warm_restart_is_a_cold_start(
            self, tmp_path, caplog):
        campaign = tmp_path / "axpy.campaign"
        run_campaign(campaign)
        campaign.write_bytes(b"coyote-campaign 2 " + b"0" * 64 + b"\nrot")
        with caplog.at_level(logging.WARNING,
                             logger="repro.coyote.parallel"):
            table = run_campaign(campaign)
        assert any("starting cold" in record.message
                   for record in caplog.records)
        # The cold rerun recomputed every point and rewrote a loadable
        # campaign file.
        assert table.to_dict(METRICS) == reference_table().to_dict(METRICS)
        assert len(load_campaign(campaign, axes_key(AXES))) == 2

    def test_checksummed_roundtrip_survives_reload(self, tmp_path):
        campaign = tmp_path / "axpy.campaign"
        save_campaign(campaign, axes_key(AXES), {"k": "v"})
        assert load_campaign(campaign, axes_key(AXES)) == {"k": "v"}


class TestCampaignLock:
    def test_second_campaign_on_same_path_fails_fast(self, tmp_path):
        campaign = tmp_path / "axpy.campaign"
        with PathLock(campaign):  # the "other process"
            with pytest.raises(CampaignLockError, match="in use"):
                run_campaign(campaign)

    def test_lock_is_released_after_the_run(self, tmp_path):
        campaign = tmp_path / "axpy.campaign"
        run_campaign(campaign)
        with PathLock(campaign):
            pass  # no stale lock left behind


# The victim: a campaign whose process SIGKILLs itself at the atomic
# replace boundary of its *second* checkpoint write — the instant after
# point one committed and while point two's checkpoint is mid-flight.
KILL_MID_WRITE_SCRIPT = """
import os, signal, sys
real_replace = os.replace
saves = {"count": 0}

def killer(src, dst):
    if str(dst).endswith(".campaign"):
        saves["count"] += 1
        if saves["count"] == 2:
            os.kill(os.getpid(), signal.SIGKILL)
    return real_replace(src, dst)

from repro.resilience import checkpoint
checkpoint.os.replace = killer

from repro.coyote.sweep import Sweep
from repro.kernels import vector_axpy
sweep = Sweep(base_cores=2, axes={"noc.latency": [2, 6]})
sweep.run(lambda settings: vector_axpy(length=32, num_cores=2),
          workers=1, on_error="skip", campaign_path=sys.argv[1])
"""


class TestKillMidCheckpointWrite:
    def test_sigkill_mid_write_preserves_previous_snapshot(
            self, tmp_path):
        campaign = tmp_path / "axpy.campaign"
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep \
            + env.get("PYTHONPATH", "")
        victim = subprocess.run(
            [sys.executable, "-c", KILL_MID_WRITE_SCRIPT, str(campaign)],
            env=env, timeout=300)
        assert victim.returncode == -9  # it really died mid-write

        # The previous consistent snapshot (one completed point) loads
        # cleanly: the half-written checkpoint never reached the path.
        completed = load_campaign(campaign, axes_key(AXES))
        assert len(completed) == 1

        # Warm restart finishes the campaign, bit-identical.
        calls = {"count": 0}

        def counting_factory(settings):
            calls["count"] += 1
            return make_axpy()

        table = run_campaign(campaign, factory=counting_factory)
        assert calls["count"] == 1  # only the missing point ran
        assert table.to_dict(METRICS) == reference_table().to_dict(METRICS)
