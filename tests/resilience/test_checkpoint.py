"""Checkpoint/restore: the resume-vs-straight differential proof.

Follows the ``tests/coyote/test_differential.py`` pattern: a run paused
at an arbitrary mid-run cycle, checkpointed to disk, reloaded, and
resumed must produce statistics and Paraver traces byte-identical to an
uninterrupted run."""

import hashlib
import json
import pickle

import pytest

from repro.coyote import Simulation, SimulationConfig
from repro.coyote.cli import make_workload
from repro.resilience import (
    CheckpointError,
    FaultSpec,
    ResilienceConfig,
    load_checkpoint,
    restore_simulation,
    save_checkpoint,
)

_HOST_FIELDS = ("wall_seconds", "host_mips", "host_profile")


def _fresh(faults=(), trace=True):
    workload = make_workload("scalar-matmul", cores=4, size=8)
    config = SimulationConfig.for_cores(4, trace_misses=trace)
    if faults:
        config.resilience = ResilienceConfig(faults=list(faults),
                                             fault_seed=42)
    return Simulation(config, workload.program), workload


def _stats(results):
    data = results.to_dict()
    for field in _HOST_FIELDS:
        data.pop(field, None)
    return data


def _digest(data) -> str:
    return hashlib.sha256(
        json.dumps(data, sort_keys=True, default=str).encode()).hexdigest()


def _prv_bytes(simulation, tmp_path, tag):
    prv, _pcf = simulation.write_trace(tmp_path / f"trace-{tag}")
    return prv.read_bytes()


class TestResumeDifferential:
    @pytest.mark.parametrize("fraction", [0.1, 0.5, 0.9])
    def test_resume_matches_straight_run(self, tmp_path, fraction):
        straight, workload = _fresh()
        reference = straight.run()
        pause_at = max(1, int(reference.cycles * fraction))

        paused, workload2 = _fresh()
        assert paused.run(pause_at=pause_at) is None
        assert paused.paused
        path = save_checkpoint(paused, tmp_path / "sim.ckpt",
                               {"kernel": "scalar-matmul"})
        resumed, metadata = load_checkpoint(path)
        assert metadata == {"kernel": "scalar-matmul"}

        results = resumed.run()
        assert _stats(results) == _stats(reference)
        assert _digest(_stats(results)) == _digest(_stats(reference))
        assert workload2.verify(resumed.memory)
        assert _prv_bytes(resumed, tmp_path, "resumed") \
            == _prv_bytes(straight, tmp_path, "straight")

    def test_double_pause_still_identical(self, tmp_path):
        straight, _ = _fresh()
        reference = straight.run()

        simulation, workload = _fresh()
        assert simulation.run(pause_at=reference.cycles // 3) is None
        path = save_checkpoint(simulation, tmp_path / "a.ckpt")
        simulation = restore_simulation(path)
        assert simulation.run(
            pause_at=2 * reference.cycles // 3) is None
        path = save_checkpoint(simulation, tmp_path / "b.ckpt")
        simulation = restore_simulation(path)
        results = simulation.run()
        assert _stats(results) == _stats(reference)
        assert workload.verify(simulation.memory)

    def test_resume_under_fault_injection(self, tmp_path):
        faults = [FaultSpec(target="l2bank", kind="delay", extra=5,
                            jitter=10, probability=0.3),
                  FaultSpec(target="noc", kind="duplicate",
                            probability=0.2)]
        straight, _ = _fresh(faults)
        reference = straight.run()

        paused, workload = _fresh(faults)
        assert paused.run(pause_at=reference.cycles // 2) is None
        path = save_checkpoint(paused, tmp_path / "faulty.ckpt")
        resumed = restore_simulation(path)
        results = resumed.run()
        # The injector's PRNG state travels with the checkpoint, so the
        # resumed fault sequence is the straight run's fault sequence.
        assert _stats(results) == _stats(reference)
        assert workload.verify(resumed.memory)

    def test_pause_before_start_is_resumable(self, tmp_path):
        straight, _ = _fresh()
        reference = straight.run()
        simulation, _ = _fresh()
        assert simulation.run(pause_at=0) is None
        path = save_checkpoint(simulation, tmp_path / "zero.ckpt")
        results = restore_simulation(path).run()
        assert _stats(results) == _stats(reference)


class TestCheckpointErrors:
    def test_completed_simulation_refuses_checkpoint(self, tmp_path):
        simulation, _ = _fresh()
        simulation.run()
        with pytest.raises(CheckpointError, match="paused"):
            save_checkpoint(simulation, tmp_path / "late.ckpt")

    def test_unstarted_simulation_checkpoints(self, tmp_path):
        simulation, workload = _fresh()
        path = save_checkpoint(simulation, tmp_path / "cold.ckpt")
        results = restore_simulation(path).run()
        assert results is not None

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_wrong_payload_shape(self, tmp_path):
        path = tmp_path / "shape.ckpt"
        path.write_bytes(pickle.dumps(["not", "a", "checkpoint"]))
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            load_checkpoint(path)

    def test_unsupported_format_version(self, tmp_path):
        path = tmp_path / "future.ckpt"
        path.write_bytes(pickle.dumps({"format": 999, "metadata": {},
                                       "simulation": None}))
        with pytest.raises(CheckpointError, match="format 999"):
            load_checkpoint(path)
