"""Direct encoder tests: operand validation and encoding invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.assembler.encoder import (
    EncodeContext,
    EncodeError,
    encode,
    parse_mem_operand,
    supported_mnemonics,
)
from repro.isa.decoder import decode
from repro.isa.registers import INT_ABI_NAMES


def ctx(pc=0x8000_0000, symbols=None):
    from repro.assembler.expr import evaluate

    table = symbols or {}
    return EncodeContext(pc=pc,
                         resolve=lambda text: evaluate(text, table))


class TestMemOperand:
    def test_basic(self):
        assert parse_mem_operand("8(sp)", ctx()) == (8, 2)

    def test_no_offset(self):
        assert parse_mem_operand("(a0)", ctx()) == (0, 10)

    def test_negative_offset(self):
        assert parse_mem_operand("-24(s0)", ctx()) == (-24, 8)

    def test_expression_offset(self):
        assert parse_mem_operand("8*2(sp)", ctx()) == (16, 2)

    def test_malformed(self):
        with pytest.raises(EncodeError):
            parse_mem_operand("a0", ctx())


class TestValidation:
    def test_wrong_operand_count(self):
        with pytest.raises(EncodeError):
            encode("add", ["a0", "a1"], ctx())

    def test_unknown_register(self):
        with pytest.raises(EncodeError):
            encode("add", ["a0", "a1", "q7"], ctx())

    def test_imm_out_of_range(self):
        with pytest.raises(EncodeError):
            encode("addi", ["a0", "a1", "5000"], ctx())

    def test_shift_out_of_range(self):
        with pytest.raises(EncodeError):
            encode("slli", ["a0", "a1", "64"], ctx())

    def test_word_shift_out_of_range(self):
        with pytest.raises(EncodeError):
            encode("slliw", ["a0", "a1", "32"], ctx())

    def test_csr_imm_out_of_range(self):
        with pytest.raises(EncodeError):
            encode("csrrwi", ["a0", "mstatus", "32"], ctx())

    def test_vector_imm_out_of_range(self):
        with pytest.raises(EncodeError):
            encode("vadd.vi", ["v1", "v2", "16"], ctx())

    def test_vector_uimm_rejects_negative(self):
        with pytest.raises(EncodeError):
            encode("vsll.vi", ["v1", "v2", "-1"], ctx())

    def test_vector_mem_offset_rejected(self):
        with pytest.raises(EncodeError):
            encode("vle64.v", ["v1", "8(a0)"], ctx())

    def test_system_takes_no_operands(self):
        with pytest.raises(EncodeError):
            encode("ecall", ["a0"], ctx())

    def test_unknown_mnemonic(self):
        with pytest.raises(EncodeError):
            encode("addq", ["a0", "a1", "a2"], ctx())

    def test_vmerge_requires_v0(self):
        with pytest.raises(EncodeError):
            encode("vmerge.vvm", ["v1", "v2", "v3", "v4"], ctx())


class TestEncodings:
    def test_every_supported_mnemonic_is_lowercase(self):
        for mnemonic in supported_mnemonics():
            assert mnemonic == mnemonic.lower()

    def test_abi_and_numeric_names_equal(self):
        for index, name in enumerate(INT_ABI_NAMES):
            a = encode("add", [name, "a1", "a2"], ctx())
            b = encode("add", [f"x{index}", "a1", "a2"], ctx())
            assert a == b

    def test_jalr_shorthand(self):
        full = encode("jalr", ["ra", "0(t0)"], ctx())
        short = encode("jalr", ["t0"], ctx())
        assert full == short

    def test_jal_shorthand(self):
        full = encode("jal", ["ra", "0x80000040"], ctx())
        short = encode("jal", ["0x80000040"], ctx())
        assert full == short

    def test_branch_is_pc_relative(self):
        near = encode("beq", ["a0", "a1", "0x80000010"],
                      ctx(pc=0x8000_0000))
        far = encode("beq", ["a0", "a1", "0x80000110"],
                     ctx(pc=0x8000_0100))
        assert near == far

    def test_la_pair_materialises_address(self):
        target = 0x8000_2468
        hi = encode("la.hi", ["a0", "sym"],
                    ctx(pc=0x8000_0000, symbols={"sym": target}))
        lo = encode("la.lo", ["a0", "sym"],
                    ctx(pc=0x8000_0004, symbols={"sym": target}))
        hi_instr, lo_instr = decode(hi), decode(lo)
        value = (0x8000_0000 + hi_instr.imm + lo_instr.imm) \
            & 0xFFFF_FFFF_FFFF_FFFF
        assert value == target

    @given(st.integers(min_value=-(1 << 20) // 2,
                       max_value=(1 << 20) // 2 - 1))
    def test_la_pair_any_displacement(self, displacement):
        pc = 0x8000_0000
        target = pc + displacement * 2
        hi = decode(encode("la.hi", ["a0", "s"],
                           ctx(pc=pc, symbols={"s": target})))
        lo = decode(encode("la.lo", ["a0", "s"],
                           ctx(pc=pc + 4, symbols={"s": target})))
        assert pc + hi.imm + lo.imm == target

    def test_vsetvli_vtype_bits(self):
        word = encode("vsetvli", ["t0", "a0", "e32", "m2", "ta", "ma"],
                      ctx())
        instr = decode(word)
        from repro.isa.vtype import VType
        vtype = VType.decode(instr.imm)
        assert vtype.sew == 32 and int(vtype.lmul) == 2

    def test_vsetivli(self):
        instr = decode(encode("vsetivli", ["t0", "12", "e64", "m1"], ctx()))
        assert instr.mnemonic == "vsetivli" and instr.shamt == 12

    def test_indexed_ordered_vs_unordered(self):
        unordered = decode(encode("vluxei64.v", ["v1", "(a0)", "v2"],
                                  ctx()))
        ordered = decode(encode("vloxei64.v", ["v1", "(a0)", "v2"], ctx()))
        assert unordered.mop == 0b01 and ordered.mop == 0b11


class TestHypothesisRoundtrip:
    """Random fields -> encode -> decode must reproduce the fields."""

    regs = st.integers(min_value=0, max_value=31)

    @given(rd=regs, rs1=regs, imm=st.integers(min_value=-2048,
                                              max_value=2047))
    def test_addi(self, rd, rs1, imm):
        word = encode("addi", [f"x{rd}", f"x{rs1}", str(imm)], ctx())
        instr = decode(word)
        assert (instr.rd, instr.rs1, instr.imm) == (rd, rs1, imm)

    @given(vd=regs, vs2=regs, vs1=regs,
           masked=st.booleans())
    def test_vadd(self, vd, vs2, vs1, masked):
        operands = [f"v{vd}", f"v{vs2}", f"v{vs1}"]
        if masked:
            operands.append("v0.t")
        instr = decode(encode("vadd.vv", operands, ctx()))
        assert (instr.rd, instr.rs2, instr.rs1) == (vd, vs2, vs1)
        assert instr.vm == (0 if masked else 1)

    @given(rd=regs, rs1=regs,
           offset=st.integers(min_value=-2048, max_value=2047))
    def test_loads(self, rd, rs1, offset):
        instr = decode(encode("ld", [f"x{rd}", f"{offset}(x{rs1})"],
                              ctx()))
        assert (instr.rd, instr.rs1, instr.imm) == (rd, rs1, offset)
