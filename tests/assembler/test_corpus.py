"""Corpus tests: every kernel's program must decode and disassemble
cleanly, and round-trip through the assembler where possible."""

import pytest

from repro.isa.decoder import decode
from repro.isa.disasm import disassemble
from repro.kernels import KERNELS

# Small, fast parameterisations for every registered kernel.
KERNEL_PARAMS = {
    "scalar-matmul": dict(size=6, num_cores=2),
    "vector-matmul": dict(size=6, num_cores=2),
    "scalar-spmv": dict(num_rows=8, nnz_per_row=2, num_cores=2),
    "spmv-csr-gather-reduce": dict(num_rows=8, nnz_per_row=2,
                                   num_cores=2),
    "spmv-csr-gather-accum": dict(num_rows=8, nnz_per_row=2,
                                  num_cores=2),
    "spmv-ell": dict(num_rows=8, nnz_per_row=2, num_cores=2),
    "spmv-csr-compressed": dict(num_rows=8, nnz_per_row=2, num_cores=2),
    "vector-stencil": dict(length=16, num_cores=2),
    "vector-axpy": dict(length=16, num_cores=2),
    "stream-triad": dict(length=16, num_cores=2),
    "vector-dot": dict(length=16, num_cores=2),
    "fft-radix2": dict(length=8, num_cores=2),
    "nn-dense-relu": dict(in_dim=6, out_dim=6, num_cores=2),
    "mlp-inference": dict(dims=(6, 8, 4), num_cores=2),
    "histogram": dict(length=32, num_bins=8, num_cores=2),
}


def iter_text_words(program):
    """Yield (address, word) for the text segment."""
    segment = program.segments[0]
    for offset in range(0, len(segment.data), 4):
        yield (segment.base + offset,
               int.from_bytes(segment.data[offset:offset + 4], "little"))


def test_every_kernel_has_params():
    assert set(KERNEL_PARAMS) == set(KERNELS)


@pytest.mark.parametrize("kernel", sorted(KERNELS), ids=sorted(KERNELS))
def test_kernel_text_decodes_and_disassembles(kernel):
    workload = KERNELS[kernel](**KERNEL_PARAMS[kernel])
    count = 0
    for _address, word in iter_text_words(workload.program):
        instr = decode(word)
        text = disassemble(instr)
        assert text and "?" not in text, \
            f"{kernel}: {word:#010x} -> {text!r}"
        count += 1
    assert count > 10


@pytest.mark.parametrize("kernel", sorted(KERNELS), ids=sorted(KERNELS))
def test_kernel_srcs_dests_well_formed(kernel):
    """Every decoded instruction's register metadata uses valid
    classes/indices (the scoreboard depends on this)."""
    workload = KERNELS[kernel](**KERNEL_PARAMS[kernel])
    for _address, word in iter_text_words(workload.program):
        instr = decode(word)
        for regclass, index in instr.srcs + instr.dests:
            assert regclass in ("x", "f", "v")
            assert 0 <= index < 32
            if regclass == "x":
                assert index != 0, \
                    f"{kernel}: x0 tracked in {instr.mnemonic}"
