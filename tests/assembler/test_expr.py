"""Tests for the assembler expression evaluator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.assembler.expr import ExprError, evaluate


class TestLiterals:
    def test_decimal(self):
        assert evaluate("42") == 42

    def test_hex(self):
        assert evaluate("0xFF") == 255

    def test_binary(self):
        assert evaluate("0b1010") == 10

    def test_octal(self):
        assert evaluate("0o17") == 15

    def test_char(self):
        assert evaluate("'A'") == 65

    def test_char_escape(self):
        assert evaluate("'\\n'") == 10


class TestOperators:
    def test_addition(self):
        assert evaluate("1 + 2 + 3") == 6

    def test_precedence(self):
        assert evaluate("2 + 3 * 4") == 14

    def test_parentheses(self):
        assert evaluate("(2 + 3) * 4") == 20

    def test_unary_minus(self):
        assert evaluate("-5 + 3") == -2

    def test_unary_tilde(self):
        assert evaluate("~0") == -1

    def test_shifts(self):
        assert evaluate("1 << 12") == 4096
        assert evaluate("256 >> 4") == 16

    def test_bitwise(self):
        assert evaluate("0xF0 | 0x0F") == 0xFF
        assert evaluate("0xFF & 0x0F") == 0x0F
        assert evaluate("0xFF ^ 0x0F") == 0xF0

    def test_bitwise_precedence(self):
        # | binds weaker than &
        assert evaluate("1 | 2 & 3") == 1 | (2 & 3)

    def test_division_truncates(self):
        assert evaluate("7 / 2") == 3
        assert evaluate("-7 / 2") == -3  # C-style truncation

    def test_modulo(self):
        assert evaluate("7 % 3") == 1

    def test_division_by_zero(self):
        with pytest.raises(ExprError):
            evaluate("1 / 0")


class TestSymbols:
    def test_lookup(self):
        assert evaluate("base + 8", {"base": 0x1000}) == 0x1008

    def test_undefined(self):
        with pytest.raises(ExprError):
            evaluate("nope")

    def test_symbol_with_dots(self):
        assert evaluate("my.label", {"my.label": 5}) == 5


class TestErrors:
    def test_empty(self):
        with pytest.raises(ExprError):
            evaluate("")

    def test_trailing_tokens(self):
        with pytest.raises(ExprError):
            evaluate("1 2")

    def test_unbalanced_parens(self):
        with pytest.raises(ExprError):
            evaluate("(1 + 2")

    def test_bad_token(self):
        with pytest.raises(ExprError):
            evaluate("1 @ 2")


@given(st.integers(min_value=-(1 << 31), max_value=1 << 31),
       st.integers(min_value=-(1 << 31), max_value=1 << 31))
def test_matches_python_addition(a, b):
    assert evaluate(f"({a}) + ({b})") == a + b


@given(st.integers(min_value=0, max_value=1 << 20),
       st.integers(min_value=0, max_value=16))
def test_matches_python_shift(value, shift):
    assert evaluate(f"{value} << {shift}") == value << shift
