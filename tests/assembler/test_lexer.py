"""Tests for the assembler lexer."""

import pytest

from repro.assembler.lexer import (
    AsmSyntaxError,
    split_operands,
    strip_comment,
    tokenize,
    tokenize_line,
    unescape_string,
)


class TestStripComment:
    def test_hash_comment(self):
        assert strip_comment("addi a0, a0, 1 # comment") == \
            "addi a0, a0, 1 "

    def test_double_slash_comment(self):
        assert strip_comment("add a0, a1, a2 // note") == "add a0, a1, a2 "

    def test_hash_inside_string_kept(self):
        assert strip_comment('.asciz "a#b" # real') == '.asciz "a#b" '

    def test_no_comment(self):
        assert strip_comment("nop") == "nop"

    def test_escaped_quote_in_string(self):
        text = '.asciz "say \\"hi\\"" # c'
        assert strip_comment(text) == '.asciz "say \\"hi\\"" '


class TestSplitOperands:
    def test_simple(self):
        assert split_operands("a0, a1, a2") == ["a0", "a1", "a2"]

    def test_memory_operand(self):
        assert split_operands("a0, 8(sp), 3") == ["a0", "8(sp)", "3"]

    def test_expression_with_parens(self):
        assert split_operands("a0, (1+2)*3") == ["a0", "(1+2)*3"]

    def test_empty(self):
        assert split_operands("") == []

    def test_string_with_comma(self):
        assert split_operands('"a,b", 3') == ['"a,b"', "3"]

    def test_whitespace_trimmed(self):
        assert split_operands("  a0 ,  a1  ") == ["a0", "a1"]


class TestTokenizeLine:
    def test_label_only(self):
        statements = tokenize_line("loop:", 1)
        assert len(statements) == 1
        assert statements[0].label == "loop"
        assert statements[0].mnemonic is None

    def test_label_and_instruction(self):
        statements = tokenize_line("loop: addi a0, a0, -1", 3)
        assert [s.label for s in statements] == ["loop", None]
        assert statements[1].mnemonic == "addi"
        assert statements[1].operands == ["a0", "a0", "-1"]

    def test_multiple_labels(self):
        statements = tokenize_line("a: b: nop", 1)
        assert [s.label for s in statements] == ["a", "b", None]

    def test_directive(self):
        statements = tokenize_line(".align 3", 1)
        assert statements[0].is_directive
        assert statements[0].mnemonic == ".align"

    def test_mnemonic_lowercased(self):
        assert tokenize_line("ADDI a0, a0, 1", 1)[0].mnemonic == "addi"

    def test_blank_line(self):
        assert tokenize_line("   ", 1) == []

    def test_comment_only_line(self):
        assert tokenize_line("# nothing here", 1) == []

    def test_line_numbers_recorded(self):
        statements = tokenize("nop\nnop\n")
        assert [s.line_number for s in statements] == [1, 2]


class TestUnescapeString:
    def test_plain(self):
        assert unescape_string('"hello"') == b"hello"

    def test_escapes(self):
        assert unescape_string('"a\\nb\\t"') == b"a\nb\t"

    def test_not_a_string(self):
        with pytest.raises(AsmSyntaxError):
            unescape_string("hello")
