"""Tests for pseudo-instruction expansion."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.assembler.pseudo import (
    PseudoError,
    expand,
    is_pseudo,
    li_sequence,
)
from repro.utils.bitops import MASK64, sign_extend


def resolve_const(text: str) -> int:
    return int(text, 0)


def expand_simple(mnemonic, *operands):
    return expand(mnemonic, list(operands), resolve_const)


class TestLiSequence:
    def test_small_positive(self):
        assert li_sequence("a0", 5) == [("addi", ["a0", "zero", "5"])]

    def test_small_negative(self):
        assert li_sequence("a0", -2048) == \
            [("addi", ["a0", "zero", "-2048"])]

    def test_32bit_uses_lui(self):
        sequence = li_sequence("a0", 0x12345000)
        assert sequence[0][0] == "lui"

    def test_32bit_with_low_bits(self):
        sequence = li_sequence("a0", 0x12345678)
        assert [mnemonic for mnemonic, _ in sequence] == ["lui", "addiw"]

    def test_64bit_sequence_bounded(self):
        sequence = li_sequence("a0", 0x0123_4567_89AB_CDEF)
        assert len(sequence) <= 8

    @staticmethod
    def _interpret(sequence) -> int:
        """Execute an li expansion symbolically."""
        regs = {"zero": 0, "a0": 0}
        for mnemonic, operands in sequence:
            if mnemonic == "addi" or mnemonic == "addiw":
                rd, rs, imm = operands
                value = regs[rs] + int(imm)
                if mnemonic == "addiw":
                    value = sign_extend(value & 0xFFFF_FFFF, 32)
                regs[rd] = value & MASK64
            elif mnemonic == "lui":
                rd, imm = operands
                regs[rd] = sign_extend((int(imm, 0) & 0xFFFFF) << 12,
                                       32) & MASK64
            elif mnemonic == "slli":
                rd, rs, amount = operands
                regs[rd] = (regs[rs] << int(amount)) & MASK64
            else:
                raise AssertionError(f"unexpected {mnemonic}")
        return regs["a0"]

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 64) - 1))
    def test_li_materialises_exact_value(self, value):
        result = self._interpret(li_sequence("a0", value))
        assert result == value & MASK64

    @pytest.mark.parametrize("value", [
        0, 1, -1, 2047, 2048, -2048, -2049, 0x7FFF_FFFF, 0x8000_0000,
        -(1 << 31), (1 << 31), 0xDEAD_BEEF_CAFE_F00D, (1 << 63) - 1,
        -(1 << 63), MASK64,
    ])
    def test_li_edge_values(self, value):
        assert self._interpret(li_sequence("a0", value)) == value & MASK64


class TestExpansions:
    def test_is_pseudo(self):
        assert is_pseudo("li") and is_pseudo("ret") and is_pseudo("bnez")
        assert not is_pseudo("addi") and not is_pseudo("vadd.vv")

    def test_mv(self):
        assert expand_simple("mv", "a0", "a1") == \
            [("addi", ["a0", "a1", "0"])]

    def test_not(self):
        assert expand_simple("not", "a0", "a1") == \
            [("xori", ["a0", "a1", "-1"])]

    def test_neg(self):
        assert expand_simple("neg", "a0", "a1") == \
            [("sub", ["a0", "zero", "a1"])]

    def test_seqz(self):
        assert expand_simple("seqz", "a0", "a1") == \
            [("sltiu", ["a0", "a1", "1"])]

    def test_beqz(self):
        assert expand_simple("beqz", "a0", "label") == \
            [("beq", ["a0", "zero", "label"])]

    def test_blez_swaps(self):
        assert expand_simple("blez", "a0", "label") == \
            [("bge", ["zero", "a0", "label"])]

    def test_bgt_swaps(self):
        assert expand_simple("bgt", "a0", "a1", "label") == \
            [("blt", ["a1", "a0", "label"])]

    def test_j(self):
        assert expand_simple("j", "label") == [("jal", ["zero", "label"])]

    def test_ret(self):
        assert expand_simple("ret") == [("jalr", ["zero", "0(ra)"])]

    def test_call(self):
        assert expand_simple("call", "fn") == [("jal", ["ra", "fn"])]

    def test_la_two_instructions(self):
        assert expand_simple("la", "a0", "symbol") == \
            [("la.hi", ["a0", "symbol"]), ("la.lo", ["a0", "symbol"])]

    def test_fmv_d(self):
        assert expand_simple("fmv.d", "fa0", "fa1") == \
            [("fsgnj.d", ["fa0", "fa1", "fa1"])]

    def test_fneg_d(self):
        assert expand_simple("fneg.d", "fa0", "fa1") == \
            [("fsgnjn.d", ["fa0", "fa1", "fa1"])]

    def test_csrr(self):
        assert expand_simple("csrr", "a0", "mhartid") == \
            [("csrrs", ["a0", "mhartid", "zero"])]

    def test_rdcycle(self):
        assert expand_simple("rdcycle", "a0") == \
            [("csrrs", ["a0", "cycle", "zero"])]

    def test_li_rejects_symbol(self):
        with pytest.raises(PseudoError):
            expand("li", ["a0", "some_label"], resolve_const)

    def test_wrong_operand_count(self):
        with pytest.raises(PseudoError):
            expand_simple("mv", "a0")

    def test_unknown_pseudo(self):
        with pytest.raises(PseudoError):
            expand_simple("frobnicate", "a0")
