"""Tests for the two-pass assembler driver."""

import struct

import pytest

from repro.assembler import AsmSyntaxError, Assembler, assemble
from repro.assembler.program import DEFAULT_TEXT_BASE


def words_of(program, segment_index=0):
    data = program.segments[segment_index].data
    return [int.from_bytes(data[i:i + 4], "little")
            for i in range(0, len(data), 4)]


class TestLayout:
    def test_text_base_default(self):
        program = assemble(".text\nnop\n")
        assert program.segments[0].base == DEFAULT_TEXT_BASE

    def test_custom_text_base(self):
        program = assemble(".text\nnop\n", text_base=0x1000)
        assert program.segments[0].base == 0x1000
        assert program.entry == 0x1000

    def test_data_follows_text_page_aligned(self):
        program = assemble(".text\nnop\n.data\nvalue: .dword 7\n")
        data_segment = program.segments[1]
        assert data_segment.base % 0x1000 == 0
        assert data_segment.base >= program.segments[0].end

    def test_entry_is_start_symbol(self):
        program = assemble(".text\nnop\n_start: nop\n")
        assert program.entry == DEFAULT_TEXT_BASE + 4

    def test_total_bytes(self):
        program = assemble(".text\nnop\nnop\n")
        assert program.total_bytes() == 8


class TestLabels:
    def test_forward_reference(self):
        program = assemble("""
.text
    j end
    nop
end:
    nop
""")
        # jal zero, +8
        assert words_of(program)[0] & 0x7F == 0x6F

    def test_backward_reference(self):
        program = assemble("""
.text
top:
    nop
    j top
""")
        word = words_of(program)[1]
        assert word & 0x7F == 0x6F
        assert word >> 31 == 1  # negative offset

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmSyntaxError):
            assemble(".text\nx: nop\nx: nop\n")

    def test_label_binds_to_data(self):
        program = assemble(".text\nnop\n.data\nv1: .dword 1\nv2: .dword 2\n")
        assert program.symbols["v2"] == program.symbols["v1"] + 8

    def test_label_across_sections(self):
        # A label directly before .data binds to the next emission point
        # in the section current at emission time.
        program = assemble(""".text
    nop
.data
value:
    .dword 9
""")
        base = program.segments[1].base
        assert program.symbols["value"] == base


class TestDirectives:
    def test_word_and_dword(self):
        program = assemble(".data\na: .word 0x11223344\nb: .dword -1\n",
                           data_base=0x2000)
        segment = program.segments[0]
        assert segment.data[:4] == bytes.fromhex("44332211")
        assert segment.data[4:12] == b"\xff" * 8

    def test_byte_and_half(self):
        program = assemble(".data\n.byte 1, 2\n.half 0x0304\n",
                           data_base=0x2000)
        assert bytes(program.segments[0].data) == b"\x01\x02\x04\x03"

    def test_double(self):
        program = assemble(".data\npi: .double 3.5\n", data_base=0x2000)
        assert struct.unpack("<d", program.segments[0].data[:8])[0] == 3.5

    def test_zero_fill(self):
        program = assemble(".data\nbuf: .zero 16\nafter: .byte 1\n",
                           data_base=0x2000)
        assert program.symbols["after"] == 0x2010

    def test_align(self):
        program = assemble(".data\n.byte 1\n.align 3\nv: .dword 2\n",
                           data_base=0x2000)
        assert program.symbols["v"] == 0x2008

    def test_balign(self):
        program = assemble(".data\n.byte 1\n.balign 16\nv: .byte 2\n",
                           data_base=0x2000)
        assert program.symbols["v"] == 0x2010

    def test_asciz(self):
        program = assemble('.data\nmsg: .asciz "hi"\n', data_base=0x2000)
        assert bytes(program.segments[0].data[:3]) == b"hi\x00"

    def test_equ_constant(self):
        program = assemble(".equ N, 16\n.text\naddi a0, zero, N\n")
        assert words_of(program)[0] >> 20 == 16

    def test_equ_in_expression(self):
        program = assemble(".equ N, 4\n.text\naddi a0, zero, N*2+1\n")
        assert words_of(program)[0] >> 20 == 9

    def test_unknown_directive(self):
        with pytest.raises(AsmSyntaxError):
            assemble(".text\n.bogus 1\n")

    def test_data_expression_references_label(self):
        program = assemble(""".text
nop
.data
table: .dword table
""")
        address = program.symbols["table"]
        stored = int.from_bytes(program.segments[1].data[:8], "little")
        assert stored == address


class TestErrors:
    def test_instruction_in_data_section(self):
        with pytest.raises(AsmSyntaxError):
            assemble(".data\nnop\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmSyntaxError):
            assemble(".text\nfrobnicate a0\n")

    def test_error_reports_line_number(self):
        with pytest.raises(AsmSyntaxError) as exc_info:
            assemble(".text\nnop\nbad_mnemonic a0\n")
        assert "line 3" in str(exc_info.value)

    def test_undefined_symbol(self):
        with pytest.raises(AsmSyntaxError):
            assemble(".text\nj nowhere\n")


class TestPseudoIntegration:
    def test_li_large_constant(self):
        program = assemble(".text\nli a0, 0x123456789\n")
        assert len(words_of(program)) >= 3

    def test_la_resolves_data_symbol(self):
        program = assemble(""".text
_start:
    la a0, value
.data
value: .dword 1
""")
        words = words_of(program)
        assert words[0] & 0x7F == 0x17  # auipc
        assert words[1] & 0x7F == 0x13  # addi

    def test_nop_is_addi(self):
        program = assemble(".text\nnop\n")
        assert words_of(program)[0] == 0x0000_0013
