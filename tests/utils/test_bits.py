"""Tests for fixed-width bit-manipulation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.utils.bitops as b


class TestMask:
    def test_zero_width(self):
        assert b.mask(0) == 0

    def test_small_widths(self):
        assert b.mask(1) == 1
        assert b.mask(3) == 0b111
        assert b.mask(8) == 0xFF

    def test_word_widths(self):
        assert b.mask(32) == b.MASK32
        assert b.mask(64) == b.MASK64

    def test_negative_width_raises(self):
        with pytest.raises(ValueError):
            b.mask(-1)


class TestSignExtend:
    def test_positive_stays_positive(self):
        assert b.sign_extend(0x7F, 8) == 127

    def test_negative_byte(self):
        assert b.sign_extend(0xFF, 8) == -1
        assert b.sign_extend(0x80, 8) == -128

    def test_already_masked_input(self):
        # Bits above `width` must be ignored.
        assert b.sign_extend(0xABCD_00FF, 8) == -1

    def test_word_boundary(self):
        assert b.sign_extend(0x8000_0000, 32) == -(1 << 31)
        assert b.sign_extend(0x7FFF_FFFF, 32) == (1 << 31) - 1

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            b.sign_extend(0, 0)

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip_64(self, value):
        assert b.sign_extend(b.to_unsigned(value, 64), 64) == value

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1),
           st.integers(min_value=1, max_value=16))
    def test_idempotent(self, value, width):
        value &= b.mask(width)
        once = b.sign_extend(value, width)
        assert b.sign_extend(once & b.mask(width), width) == once


class TestFieldAccess:
    def test_bits_extract(self):
        assert b.bits(0b110100, 5, 2) == 0b1101

    def test_bits_single(self):
        assert b.bits(0b100, 2, 2) == 1

    def test_bits_bad_range(self):
        with pytest.raises(ValueError):
            b.bits(0, 1, 2)

    def test_bit(self):
        assert b.bit(0b1000, 3) == 1
        assert b.bit(0b1000, 2) == 0

    def test_set_bits(self):
        assert b.set_bits(0, 7, 4, 0xA) == 0xA0

    def test_set_bits_overwrites(self):
        assert b.set_bits(0xFF, 7, 4, 0x0) == 0x0F

    def test_set_bits_truncates_field(self):
        assert b.set_bits(0, 3, 0, 0x1F) == 0xF

    @given(st.integers(min_value=0, max_value=b.MASK32),
           st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=31))
    def test_set_then_get(self, value, hi, lo):
        if hi < lo:
            hi, lo = lo, hi
        field = 0b1010101 & b.mask(hi - lo + 1)
        updated = b.set_bits(value, hi, lo, field)
        assert b.bits(updated, hi, lo) == field


class TestPowersAndAlignment:
    def test_is_power_of_two(self):
        assert b.is_power_of_two(1)
        assert b.is_power_of_two(1024)
        assert not b.is_power_of_two(0)
        assert not b.is_power_of_two(3)
        assert not b.is_power_of_two(-4)

    def test_clog2_exact(self):
        assert b.clog2(1) == 0
        assert b.clog2(64) == 6

    def test_clog2_rounds_up(self):
        assert b.clog2(65) == 7
        assert b.clog2(3) == 2

    def test_clog2_invalid(self):
        with pytest.raises(ValueError):
            b.clog2(0)

    def test_align_down(self):
        assert b.align_down(0x1234, 0x100) == 0x1200
        assert b.align_down(0x1200, 0x100) == 0x1200

    def test_align_up(self):
        assert b.align_up(0x1234, 0x100) == 0x1300
        assert b.align_up(0x1200, 0x100) == 0x1200

    def test_align_requires_power_of_two(self):
        with pytest.raises(ValueError):
            b.align_up(0, 3)

    def test_is_aligned(self):
        assert b.is_aligned(0x1000, 0x1000)
        assert not b.is_aligned(0x1001, 0x1000)

    @given(st.integers(min_value=0, max_value=1 << 48),
           st.integers(min_value=0, max_value=20))
    def test_align_bracket(self, value, shift):
        alignment = 1 << shift
        down = b.align_down(value, alignment)
        up = b.align_up(value, alignment)
        assert down <= value <= up
        assert up - down in (0, alignment)


class TestTruncate:
    def test_truncate_default_64(self):
        assert b.truncate(1 << 64) == 0

    def test_truncate_to_byte(self):
        assert b.truncate(0x1FF, 8) == 0xFF

    def test_to_unsigned_negative(self):
        assert b.to_unsigned(-1, 8) == 0xFF
        assert b.to_unsigned(-1) == b.MASK64
