"""Cross-cutting determinism tests: identical runs produce identical
cycle counts, statistics, and traces."""

from repro.coyote import Simulation, SimulationConfig
from repro.kernels import scalar_spmv, vector_stencil
from repro.spike import SpikeSimulator


def run_once(trace=False):
    config = SimulationConfig.for_cores(4, trace_misses=trace)
    workload = scalar_spmv(num_rows=32, nnz_per_row=5, num_cores=4,
                           seed=77)
    simulation = Simulation(config, workload.program)
    results = simulation.run()
    return simulation, results


class TestCoyoteDeterminism:
    def test_cycle_counts_identical(self):
        _sim_a, results_a = run_once()
        _sim_b, results_b = run_once()
        assert results_a.cycles == results_b.cycles
        assert results_a.instructions == results_b.instructions

    def test_stall_counters_identical(self):
        _sim_a, results_a = run_once()
        _sim_b, results_b = run_once()
        assert results_a.raw_stall_cycles == results_b.raw_stall_cycles
        assert results_a.fetch_stall_cycles == \
            results_b.fetch_stall_cycles

    def test_hierarchy_stats_identical(self):
        _sim_a, results_a = run_once()
        _sim_b, results_b = run_once()
        stats_a = {sample.full_name: sample.value
                   for sample in results_a.hierarchy_samples}
        stats_b = {sample.full_name: sample.value
                   for sample in results_b.hierarchy_samples}
        assert stats_a == stats_b

    def test_traces_identical(self):
        sim_a, _results_a = run_once(trace=True)
        sim_b, _results_b = run_once(trace=True)
        assert sim_a.trace.records == sim_b.trace.records


class TestIssDeterminism:
    def test_interleaving_does_not_change_results(self):
        final_states = []
        for interleave in (1, 16):
            workload = vector_stencil(length=48, iterations=2,
                                      num_cores=2, seed=5)
            simulator = SpikeSimulator(workload.program, num_cores=2,
                                       interleave=interleave)
            simulator.run()
            address = workload.program.symbols["stn_buf_a"]
            final_states.append(
                simulator.machine.memory.load_bytes(address, 48 * 8))
        assert final_states[0] == final_states[1]

    def test_instruction_counts_stable(self):
        counts = set()
        for _ in range(3):
            workload = scalar_spmv(num_rows=16, nnz_per_row=4,
                                   num_cores=2, seed=3)
            simulator = SpikeSimulator(workload.program, num_cores=2)
            counts.add(simulator.run())
        assert len(counts) == 1
