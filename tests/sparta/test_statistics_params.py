"""Tests for counters/statistics and parameter sets."""

import pytest

from repro.sparta.params import Parameter, ParameterError, ParameterSet
from repro.sparta.statistics import (
    Counter,
    Gauge,
    StatisticSet,
    format_report,
)


class TestCounter:
    def test_increment(self):
        counter = Counter("hits")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_iadd(self):
        counter = Counter("hits")
        counter += 3
        assert counter.value == 3


class TestGauge:
    def test_peak_tracking(self):
        gauge = Gauge("occupancy")
        gauge.set(5)
        gauge.set(2)
        gauge.add(1)
        assert gauge.value == 3 and gauge.peak == 5

    def test_add_below_zero_allowed(self):
        gauge = Gauge("delta")
        gauge.add(-2)
        assert gauge.value == -2


class TestStatisticSet:
    def test_counter_registration_idempotent(self):
        stats = StatisticSet("top")
        a = stats.counter("hits")
        b = stats.counter("hits")
        assert a is b

    def test_samples_include_gauge_peak(self):
        stats = StatisticSet("top")
        gauge = stats.gauge("occ")
        gauge.set(9)
        gauge.set(1)
        names = {sample.name: sample.value for sample in stats.samples()}
        assert names["occ"] == 1 and names["occ.peak"] == 9

    def test_sample_paths(self):
        stats = StatisticSet("a.b")
        stats.counter("c")
        (sample,) = stats.samples()
        assert sample.full_name == "a.b.c"

    def test_format_report_sorted(self):
        stats = StatisticSet("z")
        stats.counter("beta").increment(2)
        stats.counter("alpha").increment(1)
        report = format_report(stats.samples())
        assert report.index("alpha") < report.index("beta")

    def test_format_empty(self):
        assert "no statistics" in format_report([])


class TestParameterSet:
    def make(self):
        return ParameterSet([
            Parameter("size", 1024, validator=lambda v: v > 0),
            Parameter("name", "default"),
        ])

    def test_defaults(self):
        params = self.make()
        assert params["size"] == 1024 and params["name"] == "default"

    def test_set_and_get(self):
        params = self.make()
        params.set("size", 2048)
        assert params.get("size") == 2048

    def test_validator_enforced(self):
        params = self.make()
        with pytest.raises(ParameterError):
            params.set("size", -1)

    def test_unknown_parameter(self):
        params = self.make()
        with pytest.raises(ParameterError):
            params.set("bogus", 1)
        with pytest.raises(ParameterError):
            params.get("bogus")

    def test_freeze(self):
        params = self.make()
        params.freeze()
        with pytest.raises(ParameterError):
            params.set("size", 1)
        assert params["size"] == 1024  # reads still allowed

    def test_update_bulk(self):
        params = self.make()
        params.update({"size": 64, "name": "l2"})
        assert params.as_dict() == {"size": 64, "name": "l2"}

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(ParameterError):
            ParameterSet([Parameter("x", 1), Parameter("x", 2)])
