"""Tests for the discrete-event scheduler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sparta.scheduler import Scheduler, SchedulerError


class TestBasics:
    def test_starts_at_cycle_zero(self):
        assert Scheduler().current_cycle == 0

    def test_event_fires_at_delay(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(lambda: fired.append(scheduler.current_cycle),
                           delay=5)
        scheduler.advance_to(10)
        assert fired == [5]

    def test_event_args(self):
        scheduler = Scheduler()
        received = []
        scheduler.schedule(received.append, delay=1, args=("payload",))
        scheduler.advance_to(2)
        assert received == ["payload"]

    def test_zero_delay_fires_this_cycle(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(lambda: fired.append(True), delay=0)
        scheduler.advance_cycle()
        assert fired == [True]

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulerError):
            Scheduler().schedule(lambda: None, delay=-1)

    def test_rewind_rejected(self):
        scheduler = Scheduler()
        scheduler.advance_to(10)
        with pytest.raises(SchedulerError):
            scheduler.advance_to(5)


class TestOrdering:
    def test_same_cycle_fifo(self):
        scheduler = Scheduler()
        order = []
        for index in range(5):
            scheduler.schedule(order.append, delay=3, args=(index,))
        scheduler.advance_to(4)
        assert order == [0, 1, 2, 3, 4]

    def test_priority_beats_insertion(self):
        scheduler = Scheduler()
        order = []
        scheduler.schedule(order.append, delay=1, args=("late",),
                           priority=1)
        scheduler.schedule(order.append, delay=1, args=("early",),
                           priority=0)
        scheduler.advance_to(2)
        assert order == ["early", "late"]

    def test_cascading_events(self):
        """An event scheduling another event in the same cycle fires it
        in the same drain."""
        scheduler = Scheduler()
        order = []

        def first():
            order.append("first")
            scheduler.schedule(lambda: order.append("second"), delay=0)

        scheduler.schedule(first, delay=2)
        scheduler.advance_to(3)
        assert order == ["first", "second"]

    def test_events_across_cycles(self):
        scheduler = Scheduler()
        fired = []
        for delay in (3, 1, 2):
            scheduler.schedule(fired.append, delay=delay, args=(delay,))
        scheduler.advance_to(5)
        assert fired == [1, 2, 3]


class TestQueries:
    def test_next_event_cycle(self):
        scheduler = Scheduler()
        assert scheduler.next_event_cycle() is None
        scheduler.schedule(lambda: None, delay=7)
        assert scheduler.next_event_cycle() == 7

    def test_has_events_now(self):
        scheduler = Scheduler()
        scheduler.schedule(lambda: None, delay=1)
        assert not scheduler.has_events_now()
        scheduler.advance_cycle()
        assert scheduler.has_events_now()

    def test_counters(self):
        scheduler = Scheduler()
        scheduler.schedule(lambda: None, delay=1)
        scheduler.schedule(lambda: None, delay=2)
        assert scheduler.pending_events == 2
        scheduler.advance_to(3)
        assert scheduler.events_fired == 2
        assert scheduler.pending_events == 0


class TestRunUntilIdle:
    def test_drains_everything(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(fired.append, delay=100, args=(1,))
        scheduler.schedule(fired.append, delay=200, args=(2,))
        final = scheduler.run_until_idle()
        assert fired == [1, 2]
        assert final >= 200

    def test_runaway_guard(self):
        scheduler = Scheduler()

        def reschedule():
            scheduler.schedule(reschedule, delay=1)

        scheduler.schedule(reschedule, delay=1)
        with pytest.raises(SchedulerError):
            scheduler.run_until_idle(max_cycles=100)

    def test_budget_counts_cycles_not_batches(self):
        # 150 events spaced 10 cycles apart span 1500 cycles.  A budget
        # of 1000 *cycles* must trip even though only 150 event batches
        # fire (the old budget counted batches and would sail through).
        scheduler = Scheduler()
        for index in range(150):
            scheduler.schedule(lambda: None, delay=(index + 1) * 10)
        with pytest.raises(SchedulerError, match="cycle budget"):
            scheduler.run_until_idle(max_cycles=1000)

    def test_long_single_jump_within_budget(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(fired.append, delay=500_000, args=(1,))
        scheduler.run_until_idle(max_cycles=1_000_000)
        assert fired == [1]

    def test_single_jump_past_budget_raises(self):
        # One far-future event must not be able to advance the clock
        # further than an equivalent per-cycle walk could.
        scheduler = Scheduler()
        scheduler.schedule(lambda: None, delay=2000)
        with pytest.raises(SchedulerError, match="cycle budget"):
            scheduler.run_until_idle(max_cycles=1000)


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                max_size=50))
def test_fire_order_is_time_sorted(delays):
    scheduler = Scheduler()
    fired = []
    for delay in delays:
        scheduler.schedule(
            lambda d=delay: fired.append((scheduler.current_cycle, d)),
            delay=delay)
    scheduler.advance_to(101)
    fire_cycles = [cycle for cycle, _delay in fired]
    assert fire_cycles == sorted(fire_cycles)
    assert all(cycle == delay for cycle, delay in fired)
