"""Tests for units, the component tree, and latency-annotated ports."""

import pytest

from repro.sparta.ports import DataInPort, DataOutPort, PortError
from repro.sparta.scheduler import Scheduler
from repro.sparta.unit import Unit


@pytest.fixture
def root():
    return Unit("top", scheduler=Scheduler())


class TestUnitTree:
    def test_root_requires_scheduler(self):
        with pytest.raises(ValueError):
            Unit("orphan")

    def test_path(self, root):
        tile = Unit("tile0", root)
        bank = Unit("bank1", tile)
        assert bank.path == "top.tile0.bank1"

    def test_children_share_scheduler(self, root):
        child = Unit("child", root)
        assert child.scheduler is root.scheduler

    def test_duplicate_child_rejected(self, root):
        Unit("x", root)
        with pytest.raises(ValueError):
            Unit("x", root)

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            Unit("a.b", scheduler=Scheduler())

    def test_find(self, root):
        tile = Unit("tile0", root)
        bank = Unit("bank0", tile)
        assert root.find("tile0.bank0") is bank

    def test_find_missing(self, root):
        with pytest.raises(KeyError):
            root.find("nope")

    def test_walk_depth_first(self, root):
        a = Unit("a", root)
        b = Unit("b", root)
        a1 = Unit("a1", a)
        names = [unit.name for unit in root.walk()]
        assert names == ["top", "a", "a1", "b"]

    def test_collect_stats(self, root):
        child = Unit("child", root)
        counter = child.stats.counter("hits", "test")
        counter.increment(3)
        samples = root.collect_stats()
        (sample,) = [s for s in samples if s.name == "hits"]
        assert sample.value == 3
        assert sample.full_name == "top.child.hits"


class TestPorts:
    def test_send_delivers_after_latency(self, root):
        received = []
        in_port = DataInPort(root, "in", received.append)
        out_port = DataOutPort(root, "out", default_latency=4)
        out_port.bind(in_port)
        out_port.send("hello")
        root.scheduler.advance_to(3)
        assert received == []
        root.scheduler.advance_to(5)
        assert received == ["hello"]

    def test_explicit_latency_overrides_default(self, root):
        received = []
        in_port = DataInPort(root, "in", received.append)
        out_port = DataOutPort(root, "out", default_latency=10)
        out_port.bind(in_port)
        out_port.send("fast", latency=1)
        root.scheduler.advance_to(2)
        assert received == ["fast"]

    def test_unbound_send_rejected(self, root):
        out_port = DataOutPort(root, "out")
        with pytest.raises(PortError):
            out_port.send("x")

    def test_double_bind_rejected(self, root):
        in_port = DataInPort(root, "in", lambda _: None)
        out_port = DataOutPort(root, "out")
        out_port.bind(in_port)
        with pytest.raises(PortError):
            out_port.bind(in_port)

    def test_negative_latency_rejected(self, root):
        in_port = DataInPort(root, "in", lambda _: None)
        out_port = DataOutPort(root, "out")
        out_port.bind(in_port)
        with pytest.raises(PortError):
            out_port.send("x", latency=-1)

    def test_counters(self, root):
        in_port = DataInPort(root, "in", lambda _: None)
        out_port = DataOutPort(root, "out", default_latency=1)
        out_port.bind(in_port)
        out_port.send("a")
        out_port.send("b")
        root.scheduler.advance_to(3)
        assert out_port.sent == 2 and in_port.received == 2

    def test_ordering_preserved(self, root):
        received = []
        in_port = DataInPort(root, "in", received.append)
        out_port = DataOutPort(root, "out", default_latency=2)
        out_port.bind(in_port)
        for index in range(5):
            out_port.send(index)
        root.scheduler.advance_to(3)
        assert received == [0, 1, 2, 3, 4]
