"""Tests for Paraver trace writing, parsing, and analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paraver.analyzer import (
    LatencySummary,
    bank_pressure,
    kind_breakdown,
    l2_hit_rate,
    latency_by_outcome,
    per_core_counts,
    stride_histogram,
    temporal_profile,
)
from repro.paraver.parser import PrvParseError, parse_header, parse_prv
from repro.paraver.records import MissKind, MissRecord
from repro.paraver.writer import write_pcf, write_prv, write_trace


def record(core=0, issue=10, complete=50, line=0x1000, kind=MissKind.LOAD,
           bank=1, l2_hit=False):
    return MissRecord(core_id=core, issue_cycle=issue,
                      complete_cycle=complete, line_address=line,
                      kind=kind, bank_id=bank, l2_hit=l2_hit)


SAMPLE = [
    record(core=0, issue=0, complete=128, line=0x1000, bank=0),
    record(core=0, issue=10, complete=32, line=0x1040, bank=1,
           l2_hit=True),
    record(core=1, issue=5, complete=133, line=0x2000, bank=0,
           kind=MissKind.STORE),
    record(core=1, issue=50, complete=180, line=0x2040, bank=1,
           kind=MissKind.IFETCH),
]


class TestWriterParser:
    def test_round_trip(self, tmp_path):
        path = write_prv(tmp_path / "t.prv", SAMPLE, num_cores=2,
                         duration=200)
        parsed, duration, cores = parse_prv(path)
        assert duration == 200 and cores == 2
        assert sorted(parsed, key=lambda r: (r.complete_cycle, r.core_id)) \
            == sorted(SAMPLE, key=lambda r: (r.complete_cycle, r.core_id))

    def test_header_format(self, tmp_path):
        path = write_prv(tmp_path / "t.prv", [], num_cores=8,
                         duration=1000)
        first_line = path.read_text().splitlines()[0]
        assert first_line.startswith("#Paraver")
        assert parse_header(first_line) == (1000, 8)

    def test_records_time_sorted(self, tmp_path):
        path = write_prv(tmp_path / "t.prv", SAMPLE, 2, 200)
        times = [int(line.split(":")[5])
                 for line in path.read_text().splitlines()[1:]]
        assert times == sorted(times)

    def test_pcf_labels(self, tmp_path):
        path = write_pcf(tmp_path / "t.pcf")
        content = path.read_text()
        assert "EVENT_TYPE" in content and "LOAD" in content

    def test_write_trace_pair(self, tmp_path):
        prv, pcf = write_trace(tmp_path / "base", SAMPLE, 2, 200)
        assert prv.suffix == ".prv" and pcf.suffix == ".pcf"

    def test_parse_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.prv"
        bad.write_text("not a trace\n")
        with pytest.raises(PrvParseError):
            parse_prv(bad)

    def test_parse_skips_foreign_records(self, tmp_path):
        path = write_prv(tmp_path / "t.prv", SAMPLE[:1], 2, 200)
        content = path.read_text() + "1:1:1:1:1:0:10:99\n"  # state record
        path.write_text(content)
        parsed, _duration, _cores = parse_prv(path)
        assert len(parsed) == 1

    @settings(max_examples=25)
    @given(st.lists(st.builds(
        MissRecord,
        core_id=st.integers(min_value=0, max_value=7),
        issue_cycle=st.integers(min_value=0, max_value=1000),
        complete_cycle=st.integers(min_value=1001, max_value=2000),
        line_address=st.integers(min_value=0,
                                 max_value=(1 << 30) // 64).map(
            lambda line: line * 64),
        kind=st.sampled_from(list(MissKind)),
        bank_id=st.integers(min_value=0, max_value=15),
        l2_hit=st.booleans()), max_size=30))
    def test_round_trip_random(self, records):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = write_prv(Path(tmp) / "t.prv", records, 8, 2000)
            parsed, _duration, _cores = parse_prv(path)
        key = lambda r: (r.complete_cycle, r.core_id, r.line_address)
        assert sorted(parsed, key=key) == sorted(records, key=key)


class TestAnalyzer:
    def test_bank_pressure(self):
        assert bank_pressure(SAMPLE) == {0: 2, 1: 2}

    def test_kind_breakdown(self):
        breakdown = kind_breakdown(SAMPLE)
        assert breakdown[MissKind.LOAD] == 2
        assert breakdown[MissKind.STORE] == 1
        assert breakdown[MissKind.IFETCH] == 1

    def test_latency_by_outcome(self):
        summary = latency_by_outcome(SAMPLE)
        assert summary["l2_hit"].count == 1
        assert summary["l2_hit"].mean == 22.0
        assert summary["l2_miss"].count == 3

    def test_latency_summary_empty(self):
        assert LatencySummary.of([]).count == 0

    def test_per_core_counts(self):
        assert per_core_counts(SAMPLE) == {0: 2, 1: 2}

    def test_l2_hit_rate(self):
        assert l2_hit_rate(SAMPLE) == 0.25
        assert l2_hit_rate([]) == 0.0

    def test_temporal_profile_bins(self):
        profile = temporal_profile(SAMPLE, duration=200, bins=4)
        assert sum(profile) == len(SAMPLE)
        assert len(profile) == 4

    def test_temporal_profile_validates(self):
        with pytest.raises(ValueError):
            temporal_profile(SAMPLE, 200, bins=0)

    def test_stride_histogram_dense(self):
        dense = [record(core=0, issue=i, complete=i + 100,
                        line=0x1000 + 64 * i) for i in range(10)]
        top = stride_histogram(dense)
        assert top[0] == (1, 9)  # dominant +1-line stride
