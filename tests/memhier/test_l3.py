"""Tests for the optional L3 level ("deeper memory hierarchies")."""

import pytest

from repro.coyote import Simulation, SimulationConfig
from repro.kernels import stream_triad
from repro.memhier.hierarchy import MemHierConfig, MemoryHierarchy
from repro.memhier.request import MemRequest, RequestKind
from repro.sparta.scheduler import Scheduler


def make_hierarchy(**overrides):
    config = MemHierConfig(l3_enable=True, **overrides)
    scheduler = Scheduler()
    hierarchy = MemoryHierarchy(config, scheduler)
    completed: list[MemRequest] = []
    hierarchy.on_complete = completed.append
    return hierarchy, scheduler, completed


class TestL3Flow:
    def test_cold_miss_traverses_three_levels(self):
        hierarchy, scheduler, completed = make_hierarchy()
        request = hierarchy.submit(1, 0, 0x8000_0000, RequestKind.LOAD)
        scheduler.run_until_idle()
        assert completed == [request]
        # Longer than the two-level path (128 cycles at defaults): adds
        # one more NoC round trip plus the L3 lookup latencies.
        assert request.latency > 128

    def test_l3_hit_serves_l2_conflict_miss(self):
        """A line evicted from L2 but resident in L3 fills from L3,
        skipping memory."""
        hierarchy, scheduler, completed = make_hierarchy(
            l2_bank_bytes=128, l2_associativity=1, banks_per_tile=1,
            num_tiles=1)
        # Two lines conflicting in the 1-way, 2-set L2 (stride 128B) but
        # both resident in the big L3 after their cold misses.
        hierarchy.submit(1, 0, 0x0000, RequestKind.LOAD)
        scheduler.run_until_idle()
        hierarchy.submit(2, 0, 0x0080, RequestKind.LOAD)  # evicts 0x0000
        scheduler.run_until_idle()
        mc_reads_before = sum(
            mc.stats._counters["reads"].value
            for mc in hierarchy.memory_controllers)
        request = hierarchy.submit(3, 0, 0x0000, RequestKind.LOAD)
        scheduler.run_until_idle()
        mc_reads_after = sum(
            mc.stats._counters["reads"].value
            for mc in hierarchy.memory_controllers)
        assert mc_reads_after == mc_reads_before  # L3 hit: no DRAM trip
        assert request.complete_cycle >= 0

    def test_l3_stats_present(self):
        hierarchy, scheduler, _completed = make_hierarchy()
        hierarchy.submit(1, 0, 0x8000_0000, RequestKind.LOAD)
        scheduler.run_until_idle()
        names = {sample.full_name for sample in hierarchy.collect_stats()}
        assert "memhier.l3bank0.requests" in names

    def test_multiple_l3_banks_interleave(self):
        hierarchy, scheduler, _completed = make_hierarchy(l3_banks=2)
        endpoints = {hierarchy._l3_endpoint_of(line * 64)
                     for line in range(4)}
        assert len(endpoints) == 2

    def test_bad_l3_bank_count(self):
        with pytest.raises(ValueError):
            MemHierConfig(l3_enable=True, l3_banks=3).validate()


class TestL3UnderCoyote:
    def test_workload_verifies_with_l3(self):
        config = SimulationConfig.for_cores(4, l3_enable=True)
        workload = stream_triad(length=256, num_cores=4)
        simulation = Simulation(config, workload.program)
        results = simulation.run()
        assert results.succeeded()
        assert workload.verify(simulation.memory)

    def test_l3_absorbs_l2_capacity_misses(self):
        """Working set bigger than L2 but within L3: the L3 turns the
        second sweep's L2 capacity misses into L3 hits."""
        def run(l3_enable):
            config = SimulationConfig.for_cores(
                1, l2_bank_bytes=4096, banks_per_tile=2,
                l3_enable=l3_enable)
            workload = stream_triad(length=4096, num_cores=1)
            simulation = Simulation(config, workload.program)
            results = simulation.run()
            assert workload.verify(simulation.memory)
            reads = sum(sample.value
                        for sample in results.hierarchy_samples
                        if sample.name == "reads"
                        and ".mc" in sample.path)
            return results.cycles, reads

        _cycles_without, reads_without = run(False)
        _cycles_with, reads_with = run(True)
        # Streams are read once either way; the L3 must not *add* DRAM
        # traffic, and writeback re-reads may be absorbed.
        assert reads_with <= reads_without
