"""Tests for the assembled memory hierarchy (end-to-end request flow)."""

import pytest

from repro.memhier.hierarchy import MemHierConfig, MemoryHierarchy
from repro.memhier.noc import NocConfig
from repro.memhier.request import MemRequest, RequestKind
from repro.sparta.scheduler import Scheduler


def make_hierarchy(**overrides):
    config = MemHierConfig(**overrides)
    scheduler = Scheduler()
    hierarchy = MemoryHierarchy(config, scheduler)
    completed: list[MemRequest] = []
    hierarchy.on_complete = completed.append
    return hierarchy, scheduler, completed


class TestConfigValidation:
    def test_default_is_valid(self):
        MemHierConfig().validate()

    def test_bad_l2_mode(self):
        with pytest.raises(ValueError):
            MemHierConfig(l2_mode="banana").validate()

    def test_bad_policy(self):
        with pytest.raises(ValueError):
            MemHierConfig(mapping_policy="nope").validate()

    def test_non_power_of_two_banks(self):
        with pytest.raises(ValueError):
            MemHierConfig(num_tiles=3, banks_per_tile=1).validate()

    def test_non_power_of_two_mcs(self):
        with pytest.raises(ValueError):
            MemHierConfig(num_memory_controllers=3).validate()

    def test_derived_counts(self):
        config = MemHierConfig(num_tiles=2, cores_per_tile=8,
                               banks_per_tile=2)
        assert config.num_cores == 16 and config.num_banks == 4


class TestRequestFlow:
    def test_cold_load_completes(self):
        hierarchy, scheduler, completed = make_hierarchy()
        request = hierarchy.submit(1, 0, 0x8000_0000, RequestKind.LOAD)
        scheduler.run_until_idle()
        assert completed == [request]
        assert request.l2_hit is False
        # NoC in (6) + miss (4) + NoC to mc (6) + mem (100) + NoC back
        # (6) + NoC response (6) = 128.
        assert request.latency == 128

    def test_warm_load_is_l2_hit(self):
        hierarchy, scheduler, completed = make_hierarchy()
        hierarchy.submit(1, 0, 0x8000_0000, RequestKind.LOAD)
        scheduler.run_until_idle()
        second = hierarchy.submit(2, 0, 0x8000_0000, RequestKind.LOAD)
        scheduler.run_until_idle()
        assert second.l2_hit is True
        # NoC (6) + hit (10) + NoC (6) = 22.
        assert second.latency == 22

    def test_writeback_never_completes(self):
        hierarchy, scheduler, completed = make_hierarchy()
        hierarchy.submit(-1, 0, 0x8000_0000, RequestKind.WRITEBACK)
        scheduler.run_until_idle()
        assert completed == []
        assert hierarchy.outstanding() == 0

    def test_ifetch_completes(self):
        hierarchy, scheduler, completed = make_hierarchy()
        hierarchy.submit(5, 2, 0x8000_0000, RequestKind.IFETCH)
        scheduler.run_until_idle()
        assert completed[0].request_id == 5

    def test_trace_sink_called(self):
        hierarchy, scheduler, _completed = make_hierarchy()
        traced = []
        hierarchy.trace_sink = traced.append
        hierarchy.submit(1, 0, 0x8000_0000, RequestKind.LOAD)
        scheduler.run_until_idle()
        assert len(traced) == 1

    def test_mesh_noc_variant(self):
        hierarchy, scheduler, completed = make_hierarchy(
            noc=NocConfig(kind="mesh"))
        hierarchy.submit(1, 0, 0x8000_0000, RequestKind.LOAD)
        scheduler.run_until_idle()
        assert len(completed) == 1

    def test_torus_noc_variant(self):
        hierarchy, scheduler, completed = make_hierarchy(
            noc=NocConfig(kind="torus", routing="adaptive", columns=2))
        hierarchy.submit(1, 0, 0x8000_0000, RequestKind.LOAD)
        scheduler.run_until_idle()
        assert len(completed) == 1


class TestBankSelection:
    def test_shared_mode_uses_all_banks(self):
        hierarchy, _scheduler, _completed = make_hierarchy(
            num_tiles=2, cores_per_tile=4, banks_per_tile=2,
            l2_mode="shared", mapping_policy="set-interleaving")
        banks = {hierarchy.bank_for(0, line * 64).name
                 for line in range(8)}
        assert len(banks) == 4

    def test_private_mode_restricted_to_tile(self):
        hierarchy, _scheduler, _completed = make_hierarchy(
            num_tiles=2, cores_per_tile=4, banks_per_tile=2,
            l2_mode="private")
        core0_banks = {hierarchy.bank_for(0, line * 64).name
                       for line in range(16)}
        core7_banks = {hierarchy.bank_for(7, line * 64).name
                       for line in range(16)}
        assert core0_banks == {"bank0", "bank1"}
        assert core7_banks == {"bank2", "bank3"}

    def test_page_to_bank_mapping(self):
        hierarchy, _scheduler, _completed = make_hierarchy(
            num_tiles=1, banks_per_tile=4,
            mapping_policy="page-to-bank")
        page_banks = {hierarchy.bank_for(0, 0x3000 + offset).name
                      for offset in range(0, 4096, 64)}
        assert len(page_banks) == 1

    def test_mc_interleaving(self):
        hierarchy, _scheduler, _completed = make_hierarchy(
            num_memory_controllers=2)
        endpoints = {hierarchy._mc_endpoint_of(line * 64)
                     for line in range(4)}
        assert len(endpoints) == 2


class TestStats:
    def test_stats_collection_covers_units(self):
        hierarchy, scheduler, _completed = make_hierarchy()
        hierarchy.submit(1, 0, 0x8000_0000, RequestKind.LOAD)
        scheduler.run_until_idle()
        names = {sample.full_name for sample in hierarchy.collect_stats()}
        assert any("bank0.requests" in name for name in names)
        assert any("mc0.reads" in name or "mc1.reads" in name
                   for name in names)
        assert "memhier.requests_completed" in names

    def test_outstanding_tracks_in_flight(self):
        hierarchy, scheduler, _completed = make_hierarchy()
        hierarchy.submit(1, 0, 0x8000_0000, RequestKind.LOAD)
        assert hierarchy.outstanding() == 1
        scheduler.run_until_idle()
        assert hierarchy.outstanding() == 0
