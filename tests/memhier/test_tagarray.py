"""Tests for the L2 tag array (lookup/install split)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memhier.tagarray import TagArray


def small_array():
    return TagArray(size_bytes=512, associativity=2, line_bytes=64)


class TestLookupInstall:
    def test_lookup_miss_does_not_allocate(self):
        tags = small_array()
        assert not tags.lookup(0x1000, False)
        assert not tags.lookup(0x1000, False)  # still a miss

    def test_install_then_hit(self):
        tags = small_array()
        tags.install(0x1000)
        assert tags.lookup(0x1000, False)

    def test_install_returns_victim(self):
        tags = small_array()
        assert tags.install(0x0000) is None
        assert tags.install(0x0100) is None
        victim = tags.install(0x0200)
        assert victim == (0x0000, False)

    def test_dirty_victim(self):
        tags = small_array()
        tags.install(0x0000, dirty=True)
        tags.install(0x0100)
        assert tags.install(0x0200) == (0x0000, True)

    def test_write_hit_marks_dirty(self):
        tags = small_array()
        tags.install(0x0000)
        tags.lookup(0x0000, is_write=True)
        tags.install(0x0100)
        assert tags.install(0x0200) == (0x0000, True)

    def test_lookup_refreshes_lru(self):
        tags = small_array()
        tags.install(0x0000)
        tags.install(0x0100)
        tags.lookup(0x0000, False)      # 0x0100 becomes LRU
        victim = tags.install(0x0200)
        assert victim == (0x0100, False)

    def test_reinstall_resident_keeps_dirty(self):
        tags = small_array()
        tags.install(0x0000, dirty=True)
        assert tags.install(0x0000, dirty=False) is None
        tags.install(0x0100)
        assert tags.install(0x0200) == (0x0000, True)

    def test_contains_no_side_effects(self):
        tags = small_array()
        tags.install(0x0000)
        tags.install(0x0100)
        assert tags.contains(0x0000)
        tags.install(0x0200)  # 0x0000 still LRU despite contains()
        assert not tags.contains(0x0000)


class TestGeometry:
    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            TagArray(1000, 2, 64)
        with pytest.raises(ValueError):
            TagArray(512, 2, 60)

    def test_resident_lines(self):
        tags = small_array()
        tags.install(0x0000)
        tags.install(0x1040)
        assert tags.resident_lines() == 2


@settings(max_examples=30)
@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                max_size=200))
def test_install_capacity_invariant(lines):
    tags = TagArray(size_bytes=2048, associativity=4, line_bytes=64)
    for line in lines:
        if not tags.lookup(line * 64, False):
            tags.install(line * 64)
        assert tags.resident_lines() <= 32
