"""Unit tests for the mesh/torus contention model.

Covers the structured :class:`NocConfig`, link arbitration (capacity,
queueing), routing policies, stations, conservation checks, and the
observability hooks — all at the unit level with hand-placed endpoints,
so each behaviour is pinned to exact cycle numbers.
"""

import pickle

import pytest

from repro.memhier.noc import (
    MeshNoC,
    NocConfig,
    RoutingPolicy,
    make_noc,
)
from repro.sparta.scheduler import Scheduler
from repro.sparta.unit import Unit


@pytest.fixture
def root():
    return Unit("top", scheduler=Scheduler())


def make_mesh(root, endpoints, name="noc", **config_kwargs):
    """A MeshNoC with ``endpoints`` attached in order and every
    delivery recorded as ``(cycle, endpoint, payload)``."""
    noc = make_noc(NocConfig(kind=config_kwargs.pop("kind", "mesh"),
                             **config_kwargs), name, root)
    deliveries = []

    def handler_for(name):
        return lambda payload: deliveries.append(
            (root.scheduler.current_cycle, name, payload))

    for name in endpoints:
        noc.attach(name, handler_for(name))
    return noc, deliveries


class TestNocConfig:
    def test_defaults_are_valid(self):
        NocConfig().validate()

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            NocConfig(kind="hypercube")

    def test_unknown_routing(self):
        with pytest.raises(ValueError):
            NocConfig(routing="zigzag")

    def test_routing_enum_normalised_to_string(self):
        config = NocConfig(routing=RoutingPolicy.ADAPTIVE)
        assert config.routing == "adaptive"
        assert isinstance(config.routing, str)

    def test_torus_forces_wrap(self):
        assert NocConfig(kind="torus").wrap
        assert NocConfig(kind="torus", wrap=False).wrap

    def test_bad_numbers(self):
        for bad in (dict(latency=-1), dict(columns=0),
                    dict(router_latency=-1), dict(link_latency=-1),
                    dict(link_capacity=0)):
            with pytest.raises(ValueError):
                NocConfig(**bad)

    def test_from_value(self):
        assert NocConfig.from_value(None) == NocConfig()
        config = NocConfig(kind="mesh")
        assert NocConfig.from_value(config) is config
        assert NocConfig.from_value({"kind": "mesh", "columns": 2}) \
            == NocConfig(kind="mesh", columns=2)

    def test_from_value_unknown_key(self):
        with pytest.raises(ValueError):
            NocConfig.from_value({"bogus": 1})


class TestLinkContention:
    def test_second_message_queues_on_busy_link(self, root):
        # Two same-cycle messages over the single (0,0)->(1,0) link:
        # the first departs its router at cycle 1 and is delivered at
        # cycle 3 (the closed form); the second finds the link slot
        # taken, departs at 2, and lands at 4.
        noc, deliveries = make_mesh(root, ["a", "b"], columns=2)
        noc.route("a", "b", "first")
        noc.route("a", "b", "second")
        root.scheduler.run_until_idle()
        assert deliveries == [(3, "b", "first"), (4, "b", "second")]
        assert noc.stats._counters["queue_cycles"].value == 1

    def test_link_capacity_two_admits_both(self, root):
        noc, deliveries = make_mesh(root, ["a", "b"], columns=2,
                                    link_capacity=2)
        noc.route("a", "b", "first")
        noc.route("a", "b", "second")
        root.scheduler.run_until_idle()
        assert deliveries == [(3, "b", "first"), (3, "b", "second")]
        assert noc.stats._counters["queue_cycles"].value == 0

    def test_zero_load_latency_matches_closed_form(self, root):
        noc, deliveries = make_mesh(root, [f"e{i}" for i in range(8)],
                                    columns=4)
        expected = noc.route_latency("e0", "e7")  # (0,0) -> (3,1)
        noc.route("e0", "e7", "x")
        root.scheduler.run_until_idle()
        assert deliveries == [(expected, "e7", "x")]

    def test_contended_latency_exceeds_closed_form(self, root):
        noc, deliveries = make_mesh(root, ["a", "b"], columns=2)
        for index in range(8):
            noc.route("a", "b", index)
        root.scheduler.run_until_idle()
        closed_form = noc.route_latency("a", "b")
        mean = (sum(cycle for cycle, _e, _p in deliveries)
                / len(deliveries))
        assert mean > closed_form
        # But the *first* message still sees the zero-load number.
        assert deliveries[0][0] == closed_form

    def test_disjoint_links_do_not_interfere(self, root):
        # a->b uses (0,0)->(1,0); c->d uses (0,1)->(1,1).
        noc, deliveries = make_mesh(root, ["a", "b", "c", "d"],
                                    columns=2)
        noc.route("a", "b", "row0")
        noc.route("c", "d", "row1")
        root.scheduler.run_until_idle()
        assert sorted(deliveries) == [(3, "b", "row0"), (3, "d", "row1")]


class TestTopologyAndRouting:
    def test_torus_wrap_shortens_path(self, root):
        endpoints = [f"e{i}" for i in range(4)]
        mesh, _ = make_mesh(root, endpoints, name="mesh", columns=4)
        torus, _ = make_mesh(root, endpoints, name="torus",
                             kind="torus", columns=4)
        assert mesh.route_latency("e0", "e3") == 3 * 2 + 1  # 3 hops
        assert torus.route_latency("e0", "e3") == 1 * 2 + 1  # wraps
        assert torus.wrap and not mesh.wrap

    def test_torus_delivery_uses_wrap_link(self, root):
        noc, deliveries = make_mesh(root, [f"e{i}" for i in range(4)],
                                    kind="torus", columns=4)
        noc.route("e0", "e3", "x")
        root.scheduler.run_until_idle()
        assert deliveries[0][0] == noc.route_latency("e0", "e3")
        assert ((0, 0), (3, 0)) in noc.link_utilisation()

    def test_xy_and_yx_take_different_corners(self, root):
        for routing, corner in (("xy", ((1, 0), (1, 1))),
                                ("yx", ((0, 1), (1, 1)))):
            scheduler = Scheduler()
            local_root = Unit("top", scheduler=scheduler)
            noc, deliveries = make_mesh(local_root,
                                        ["e0", "e1", "e2", "e3"],
                                        columns=2, routing=routing)
            noc.route("e0", "e3", "x")  # (0,0) -> (1,1)
            scheduler.run_until_idle()
            assert deliveries[0][0] == 5  # 2 hops either way
            assert corner in noc.link_utilisation(), routing

    def test_adaptive_is_deterministic_across_runs(self, root):
        def run_once():
            scheduler = Scheduler()
            local_root = Unit("top", scheduler=scheduler)
            noc, deliveries = make_mesh(
                local_root, [f"e{i}" for i in range(4)], columns=2,
                routing="adaptive", adaptive_seed=11)
            for index in range(12):
                noc.route("e0", "e3", index)
                noc.route("e3", "e0", -index)
            scheduler.run_until_idle()
            return deliveries, noc.link_utilisation()

        assert run_once() == run_once()

    def test_adaptive_avoids_congested_dimension(self, root):
        # Pre-load the x-link out of (0,0); the adaptive probe must
        # route the next (0,0)->(1,1) message via the y-link first.
        noc, _deliveries = make_mesh(root, ["e0", "e1", "e2", "e3"],
                                     columns=2, routing="adaptive")
        noc.route("e0", "e1", "congest-x")
        noc.route("e0", "e3", "probe")
        root.scheduler.run_until_idle()
        assert ((0, 0), (0, 1)) in noc.link_utilisation()

    def test_stations_share_a_router(self, root):
        noc = make_noc(NocConfig(kind="mesh", columns=2), "noc", root)
        received = []
        noc.attach("bank0", lambda p: None)
        noc.attach("bank0.fill", received.append, station="bank0")
        assert noc._coordinates["bank0"] == noc._coordinates["bank0.fill"]
        assert noc.route_latency("bank0", "bank0.fill") \
            == noc.router_latency  # zero hops
        noc.route("bank0", "bank0.fill", "fill")
        root.scheduler.run_until_idle()
        assert received == ["fill"]


class TestAccounting:
    def test_conservation_clean_after_drain(self, root):
        noc, _deliveries = make_mesh(root, ["a", "b"], columns=2)
        for index in range(5):
            noc.route("a", "b", index)
        root.scheduler.run_until_idle()
        assert noc.check_conservation(0) == []
        report = noc.congestion_report()
        assert report["injected"] == report["delivered"] == 5
        assert report["in_network"] == 0

    def test_conservation_flags_mismatch(self, root):
        noc, _deliveries = make_mesh(root, ["a", "b"], columns=2)
        noc.route("a", "b", "x")
        root.scheduler.run_until_idle()
        violations = noc.check_conservation(1)  # lie: one still inside
        names = {entry["invariant"] for entry in violations}
        assert names == {"noc_flit_conservation", "noc_occupancy_gauge"}

    def test_queue_observer_sees_waits(self, root):
        noc, _deliveries = make_mesh(root, ["a", "b"], columns=2)
        waits = []
        noc.queue_observer = waits.append
        noc.route("a", "b", "first")
        noc.route("a", "b", "second")
        root.scheduler.run_until_idle()
        assert waits == [0, 1]  # one observation per link traversal

    def test_occupancy_sink_tracks_gauge(self, root):
        noc, _deliveries = make_mesh(root, ["a", "b"], columns=2)
        samples = []
        noc.occupancy_sink = lambda cycle, count: samples.append(count)
        noc.route("a", "b", "first")
        noc.route("a", "b", "second")
        root.scheduler.run_until_idle()
        assert samples == [1, 2, 1, 0]  # two injects, two delivers

    def test_congestion_report_is_json_safe(self, root):
        import json
        noc, _deliveries = make_mesh(root, ["a", "b", "c", "d"],
                                     columns=2)
        noc.route("a", "d", "x")
        root.scheduler.run_until_idle()
        report = noc.congestion_report()
        json.dumps(report)
        assert sum(report["links"].values()) == report["hops"]

    def test_mesh_link_utilisation_keyed_by_coordinates(self, root):
        noc, _deliveries = make_mesh(root, ["a", "b"], columns=2)
        noc.route("a", "b", "x")
        root.scheduler.run_until_idle()
        assert noc.link_utilisation() == {((0, 0), (1, 0)): 1}


def _drop(payload):
    """Module-level no-op delivery handler (picklable)."""


class TestMidFlightPickle:
    def test_network_state_survives_a_pickle(self, root):
        noc = make_noc(NocConfig(kind="mesh", columns=2,
                                 routing="adaptive"), "noc", root)
        noc.attach("a", _drop)
        noc.attach("b", _drop)
        for index in range(6):
            noc.route("a", "b", index)
        root.scheduler.advance_to(2)  # messages still in flight
        assert noc.stats._counters["in_network"].value > 0
        blob = pickle.dumps((root, noc), protocol=2)
        clone_root, clone = pickle.loads(blob)
        clone_root.scheduler.run_until_idle()
        root.scheduler.run_until_idle()
        assert clone.congestion_report() == noc.congestion_report()
