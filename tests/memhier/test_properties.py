"""Property-based tests for the memory hierarchy.

Two system-level invariants:

* **LRU reference model** — the TagArray must agree, access for access,
  with an executable specification of a set-associative LRU cache.
* **Request conservation** — any random stream of submitted requests is
  eventually completed exactly once, with consistent counters, under any
  hierarchy configuration.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memhier.hierarchy import MemHierConfig, MemoryHierarchy
from repro.memhier.request import RequestKind
from repro.memhier.tagarray import TagArray
from repro.sparta.scheduler import Scheduler


class ReferenceLru:
    """Executable specification: per-set python lists, index 0 = LRU."""

    def __init__(self, num_sets: int, ways: int, line_bytes: int):
        self.num_sets = num_sets
        self.ways = ways
        self.line_bytes = line_bytes
        self.sets: list[list[tuple[int, bool]]] = \
            [[] for _ in range(num_sets)]

    def _set_of(self, address: int) -> int:
        return (address // self.line_bytes) % self.num_sets

    def _find(self, entries, line):
        for position, (entry_line, _dirty) in enumerate(entries):
            if entry_line == line:
                return position
        return None

    def lookup(self, address: int, is_write: bool) -> bool:
        entries = self.sets[self._set_of(address)]
        line = address // self.line_bytes
        position = self._find(entries, line)
        if position is None:
            return False
        _line, dirty = entries.pop(position)
        entries.append((line, dirty or is_write))
        return True

    def install(self, address: int, dirty: bool):
        entries = self.sets[self._set_of(address)]
        line = address // self.line_bytes
        position = self._find(entries, line)
        if position is not None:
            _line, old_dirty = entries.pop(position)
            entries.append((line, old_dirty or dirty))
            return None
        victim = None
        if len(entries) >= self.ways:
            victim_line, victim_dirty = entries.pop(0)
            victim = (victim_line * self.line_bytes, victim_dirty)
        entries.append((line, dirty))
        return victim


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=63),
                          st.booleans(), st.booleans()),
                min_size=1, max_size=150))
def test_tagarray_matches_reference_lru(operations):
    """(line, is_write, do_install) streams agree with the spec."""
    tags = TagArray(size_bytes=2048, associativity=4, line_bytes=64)
    reference = ReferenceLru(num_sets=8, ways=4, line_bytes=64)
    for line_index, is_write, do_install in operations:
        address = line_index * 64
        assert tags.lookup(address, is_write) == \
            reference.lookup(address, is_write)
        if do_install and not tags.contains(address):
            assert tags.install(address, dirty=is_write) == \
                reference.install(address, dirty=is_write)


_request_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),        # core
        st.integers(min_value=0, max_value=255),      # line index
        st.sampled_from([RequestKind.LOAD, RequestKind.STORE,
                         RequestKind.IFETCH, RequestKind.WRITEBACK]),
        st.integers(min_value=0, max_value=30),       # submit delay
    ),
    min_size=1, max_size=60)


@settings(max_examples=25, deadline=None)
@given(requests=_request_strategy,
       l2_mode=st.sampled_from(["shared", "private"]),
       mapping=st.sampled_from(["set-interleaving", "page-to-bank"]),
       max_in_flight=st.sampled_from([1, 2, 16]),
       l3=st.booleans())
def test_request_conservation(requests, l2_mode, mapping, max_in_flight,
                              l3):
    """Every response-needing request completes exactly once."""
    config = MemHierConfig(num_tiles=2, cores_per_tile=4,
                           banks_per_tile=2, l2_mode=l2_mode,
                           mapping_policy=mapping,
                           l2_max_in_flight=max_in_flight,
                           l3_enable=l3)
    scheduler = Scheduler()
    hierarchy = MemoryHierarchy(config, scheduler)
    completed_ids: list[int] = []
    hierarchy.on_complete = \
        lambda request: completed_ids.append(request.request_id)

    expected_ids = []
    next_id = 0
    for core, line_index, kind, delay in requests:
        def submit(core=core, line_index=line_index, kind=kind,
                   request_id=next_id):
            hierarchy.submit(request_id, core, line_index * 64, kind)
        scheduler.schedule(submit, delay=delay)
        if kind is not RequestKind.WRITEBACK:
            expected_ids.append(next_id)
        next_id += 1

    scheduler.run_until_idle(max_cycles=1_000_000)
    assert sorted(completed_ids) == sorted(expected_ids)
    assert hierarchy.outstanding() == 0
    # No bank left holding state.
    for bank in hierarchy.banks + hierarchy.l3_banks:
        assert bank.in_flight() == 0
        assert bank.queued() == 0
