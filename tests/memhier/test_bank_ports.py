"""Unit tests for the bank port-contention model."""

import pytest

from repro.memhier.l2bank import CacheBank
from repro.memhier.request import MemRequest, RequestKind
from repro.sparta.scheduler import Scheduler
from repro.sparta.unit import Unit


class PortHarness:
    def __init__(self, cycles_per_request):
        self.scheduler = Scheduler()
        self.root = Unit("top", scheduler=self.scheduler)
        self.sent = []
        self.bank = CacheBank(
            "bank0", self.root, size_bytes=1024, associativity=2,
            line_bytes=64, hit_latency=3, miss_latency=1,
            max_in_flight=8,
            send=lambda s, d, p: self.sent.append((d, p)),
            next_level_of=lambda _line: "mc0",
            cycles_per_request=cycles_per_request)
        self._next_id = 0

    def request(self, line, kind=RequestKind.LOAD):
        self._next_id += 1
        request = MemRequest(request_id=self._next_id, core_id=0,
                             tile_id=0, line_address=line, kind=kind,
                             issue_cycle=self.scheduler.current_cycle)
        request.fill_target = "tileside"
        self.bank.handle_request(request)
        return request

    def warm(self, line):
        request = self.request(line)
        self.scheduler.advance_to(self.scheduler.current_cycle + 10)
        self.bank.handle_fill(request)

    def responses_at(self):
        return [(dest, payload) for dest, payload in self.sent
                if dest == "tileside"]


class TestPortModel:
    def test_ideal_port_hits_in_parallel(self):
        harness = PortHarness(cycles_per_request=0)
        harness.warm(0x1000)
        harness.warm(0x2000)
        start = harness.scheduler.current_cycle
        harness.request(0x1000)
        harness.request(0x2000)
        harness.scheduler.advance_to(start + 4)
        # Both hits respond after hit_latency=3, same cycle.
        assert len(harness.responses_at()) == 4  # 2 fills + 2 hits

    def test_single_port_serialises_hits(self):
        harness = PortHarness(cycles_per_request=5)
        harness.warm(0x1000)
        harness.warm(0x2000)
        harness.sent.clear()
        start = harness.scheduler.current_cycle
        harness.request(0x1000)
        harness.request(0x2000)
        harness.scheduler.advance_to(start + 4)
        assert len(harness.responses_at()) == 1  # second waits the port
        harness.scheduler.advance_to(start + 9)
        assert len(harness.responses_at()) == 2

    def test_conflict_cycles_counted(self):
        harness = PortHarness(cycles_per_request=5)
        harness.request(0x1000)
        harness.request(0x2000)
        stat = harness.bank.stats._counters["port_conflict_cycles"]
        assert stat.value == 5

    def test_port_idle_after_gap(self):
        harness = PortHarness(cycles_per_request=5)
        harness.warm(0x1000)
        harness.sent.clear()
        harness.scheduler.advance_to(harness.scheduler.current_cycle
                                     + 50)
        start = harness.scheduler.current_cycle
        harness.request(0x1000)
        harness.scheduler.advance_to(start + 4)
        assert len(harness.responses_at()) == 1  # no residual queueing

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PortHarness(cycles_per_request=-1)
