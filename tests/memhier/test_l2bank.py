"""Tests for the L2 bank unit: hits, MSHRs, coalescing, back-pressure."""

import pytest

from repro.memhier.l2bank import L2Bank
from repro.memhier.request import MemRequest, RequestKind
from repro.sparta.scheduler import Scheduler
from repro.sparta.unit import Unit


class BankHarness:
    """An L2 bank wired to a message-recording fake NoC."""

    def __init__(self, **bank_kwargs):
        self.scheduler = Scheduler()
        self.root = Unit("top", scheduler=self.scheduler)
        self.sent: list[tuple[str, str, MemRequest]] = []
        defaults = dict(size_bytes=1024, associativity=2, line_bytes=64,
                        hit_latency=3, miss_latency=1, max_in_flight=2)
        defaults.update(bank_kwargs)
        self.bank = L2Bank("bank0", self.root, send=self._send,
                           next_level_of=lambda _line: "mc0", **defaults)
        self._next_id = 0

    def _send(self, source, destination, payload):
        self.sent.append((source, destination, payload))

    def request(self, line, kind=RequestKind.LOAD):
        self._next_id += 1
        request = MemRequest(request_id=self._next_id, core_id=0,
                             tile_id=0, line_address=line, kind=kind,
                             issue_cycle=self.scheduler.current_cycle)
        request.fill_target = "tileside"
        self.bank.handle_request(request)
        return request

    def run(self, cycles=50):
        self.scheduler.advance_to(self.scheduler.current_cycle + cycles)

    def to_mc(self):
        return [payload for _s, dest, payload in self.sent
                if dest == "mc0"]

    def responses(self):
        return [payload for _s, dest, payload in self.sent
                if dest == "tileside"]

    def fill(self, request):
        self.bank.handle_fill(request)


class TestHitPath:
    def test_miss_goes_to_memory(self):
        harness = BankHarness()
        harness.request(0x1000)
        harness.run()
        assert len(harness.to_mc()) == 1
        assert harness.to_mc()[0].fill_target == harness.bank.fill_endpoint

    def test_fill_responds_to_tileside(self):
        harness = BankHarness()
        request = harness.request(0x1000)
        harness.run()
        harness.fill(request)
        assert harness.responses() == [request]
        assert request.l2_hit is False

    def test_hit_after_fill(self):
        harness = BankHarness()
        first = harness.request(0x1000)
        harness.run()
        harness.fill(first)
        second = harness.request(0x1000)
        harness.run()
        assert second in harness.responses()
        assert second.l2_hit is True
        assert len(harness.to_mc()) == 1  # no second memory trip

    def test_hit_latency_applied(self):
        harness = BankHarness(hit_latency=7)
        first = harness.request(0x1000)
        harness.run()
        harness.fill(first)
        start = harness.scheduler.current_cycle
        harness.request(0x1000)
        harness.scheduler.advance_to(start + 6)
        assert len(harness.responses()) == 1  # only the fill response
        harness.scheduler.advance_to(start + 8)
        assert len(harness.responses()) == 2


class TestMshr:
    def test_coalescing_same_line(self):
        harness = BankHarness()
        first = harness.request(0x1000)
        second = harness.request(0x1000)
        harness.run()
        assert len(harness.to_mc()) == 1  # one fill for both
        harness.fill(first)
        responses = harness.responses()
        assert any(response is first for response in responses)
        assert any(response is second for response in responses)

    def test_back_pressure_when_full(self):
        harness = BankHarness(max_in_flight=2)
        requests = [harness.request(0x1000 * (i + 1)) for i in range(3)]
        harness.run()
        assert len(harness.to_mc()) == 2  # third queued
        assert harness.bank.queued() == 1
        harness.fill(requests[0])
        harness.run()
        assert len(harness.to_mc()) == 3  # queue drained

    def test_mshr_stall_counted(self):
        harness = BankHarness(max_in_flight=1)
        harness.request(0x1000)
        harness.request(0x2000)
        harness.run()
        assert harness.bank.stats._counters["mshr_stalls"].value == 1

    def test_unexpected_fill_raises(self):
        harness = BankHarness()
        stray = MemRequest(request_id=9, core_id=0, tile_id=0,
                           line_address=0x5000, kind=RequestKind.LOAD,
                           issue_cycle=0)
        with pytest.raises(RuntimeError):
            harness.fill(stray)


class TestWritebacks:
    def test_store_miss_fill_installs_dirty(self):
        harness = BankHarness(size_bytes=128, associativity=1)
        store = harness.request(0x0000, RequestKind.STORE)
        harness.run()
        harness.fill(store)
        # Evict via a conflicting line: set 0 and stride = 128B.
        conflict = harness.request(0x0080)
        harness.run()
        harness.fill(conflict)
        writebacks = [payload for payload in harness.to_mc()
                      if payload.kind is RequestKind.WRITEBACK]
        assert len(writebacks) == 1
        assert writebacks[0].line_address == 0x0000

    def test_l1_writeback_absorbed_when_resident(self):
        harness = BankHarness()
        first = harness.request(0x1000)
        harness.run()
        harness.fill(first)
        harness.request(0x1000, RequestKind.WRITEBACK)
        harness.run()
        # Absorbed: no extra memory traffic, no response.
        assert len(harness.to_mc()) == 1
        assert len(harness.responses()) == 1

    def test_l1_writeback_forwarded_when_absent(self):
        harness = BankHarness()
        harness.request(0x3000, RequestKind.WRITEBACK)
        harness.run()
        (message,) = harness.to_mc()
        assert message.kind is RequestKind.WRITEBACK
        assert len(harness.responses()) == 0

    def test_clean_eviction_no_writeback(self):
        harness = BankHarness(size_bytes=128, associativity=1)
        first = harness.request(0x0000)
        harness.run()
        harness.fill(first)
        second = harness.request(0x0080)
        harness.run()
        harness.fill(second)
        writebacks = [payload for payload in harness.to_mc()
                      if payload.kind is RequestKind.WRITEBACK]
        assert not writebacks


class TestLateHit:
    """A fill may install a line between a request's miss classification
    and its (miss_latency-delayed) MSHR allocation; the bank must notice
    and serve the request as a hit instead of re-fetching the line."""

    def test_intervening_fill_becomes_hit(self):
        harness = BankHarness()
        first = harness.request(0x1000)
        harness.run(10)
        # ``second`` is classified as a miss (line not yet resident)...
        second = harness.request(0x1000)
        # ...then the fill for ``first`` lands before second's
        # _start_miss fires one cycle later.
        harness.fill(first)
        harness.run(10)
        fills = [payload for payload in harness.to_mc()
                 if payload.kind is RequestKind.LOAD]
        assert len(fills) == 1  # no redundant second memory fetch
        assert second in harness.responses()
        assert second.l2_hit is True
        assert harness.bank.in_flight() == 0  # no stray MSHR left
        assert harness.bank.stats._counters["late_hits"].value == 1

    def test_store_late_hit_marks_line_dirty(self):
        harness = BankHarness(size_bytes=128, associativity=1)
        first = harness.request(0x0000)
        harness.run(10)
        store = harness.request(0x0000, RequestKind.STORE)
        harness.fill(first)
        harness.run(10)
        assert store in harness.responses()
        # The late store hit dirtied the line: evicting it must write
        # it back toward memory.
        conflict = harness.request(0x0080)
        harness.run(10)
        harness.fill(conflict)
        writebacks = [payload for payload in harness.to_mc()
                      if payload.kind is RequestKind.WRITEBACK]
        assert [payload.line_address for payload in writebacks] == [0x0000]

    def test_pending_queue_rechecks_tags_on_drain(self):
        harness = BankHarness(max_in_flight=1)
        blocker = harness.request(0x2000)
        harness.run(10)
        # Two requests for the same (absent) line queue behind the
        # full MSHR file without coalescing — no MSHR exists for them.
        queued_a = harness.request(0x1000)
        queued_b = harness.request(0x1000)
        harness.run(10)
        assert harness.bank.queued() == 2
        harness.fill(blocker)   # drains queued_a into a fresh MSHR
        harness.run(10)
        harness.fill(queued_a)  # installs 0x1000, then drains queued_b
        harness.run(10)
        fills = [payload for payload in harness.to_mc()
                 if payload.kind is RequestKind.LOAD]
        assert len(fills) == 2  # blocker + queued_a, not a third
        assert queued_b in harness.responses()
        assert harness.bank.stats._counters["late_hits"].value == 1


class TestWritebackMshrCoalesce:
    """A WRITEBACK arriving while the same line has an in-flight fill
    must not race it to memory: the dirtiness belongs to the line the
    fill is about to install."""

    def test_writeback_before_fill_installs_dirty(self):
        harness = BankHarness(size_bytes=128, associativity=1)
        load = harness.request(0x0000)
        harness.run(10)
        assert harness.bank.in_flight() == 1
        harness.request(0x0000, RequestKind.WRITEBACK)
        harness.run(10)
        # Coalesced into the MSHR: nothing written toward memory yet.
        writebacks = [payload for payload in harness.to_mc()
                      if payload.kind is RequestKind.WRITEBACK]
        assert not writebacks
        counters = harness.bank.stats._counters
        assert counters["writebacks_coalesced"].value == 1
        harness.fill(load)
        # Only the load gets a response; the writeback never does.
        assert harness.responses() == [load]
        # The install was dirty: evicting the line writes it back.
        conflict = harness.request(0x0080)
        harness.run(10)
        harness.fill(conflict)
        writebacks = [payload for payload in harness.to_mc()
                      if payload.kind is RequestKind.WRITEBACK]
        assert [payload.line_address for payload in writebacks] == [0x0000]

    def test_fill_before_writeback_still_dirty(self):
        harness = BankHarness(size_bytes=128, associativity=1)
        load = harness.request(0x0000)
        harness.run(10)
        harness.fill(load)  # installs clean
        harness.request(0x0000, RequestKind.WRITEBACK)
        harness.run(10)     # absorbed by the resident line, now dirty
        conflict = harness.request(0x0080)
        harness.run(10)
        harness.fill(conflict)
        writebacks = [payload for payload in harness.to_mc()
                      if payload.kind is RequestKind.WRITEBACK]
        assert [payload.line_address for payload in writebacks] == [0x0000]
