"""Tests for the address-to-bank mapping policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memhier.mapping import (
    PageToBank,
    SetInterleaving,
    make_policy,
    policy_names,
)


class TestSetInterleaving:
    def test_consecutive_lines_round_robin(self):
        policy = SetInterleaving(4, line_bytes=64)
        banks = [policy.bank_of(line * 64) for line in range(8)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_same_line_same_bank(self):
        policy = SetInterleaving(4, line_bytes=64)
        assert policy.bank_of(0x1000) == policy.bank_of(0x1000 + 63)

    def test_single_bank(self):
        policy = SetInterleaving(1)
        assert policy.bank_of(0xDEADBEC0) == 0


class TestPageToBank:
    def test_whole_page_one_bank(self):
        policy = PageToBank(4, line_bytes=64, page_bytes=4096)
        banks = {policy.bank_of(0x3000 + offset)
                 for offset in range(0, 4096, 64)}
        assert len(banks) == 1

    def test_consecutive_pages_round_robin(self):
        policy = PageToBank(4, page_bytes=4096)
        banks = [policy.bank_of(page * 4096) for page in range(8)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]


class TestFactory:
    def test_names(self):
        assert set(policy_names()) == {"set-interleaving", "page-to-bank"}

    def test_make_by_name(self):
        assert isinstance(make_policy("page-to-bank", 4), PageToBank)
        assert isinstance(make_policy("set-interleaving", 4),
                          SetInterleaving)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("hash-based", 4)

    def test_bad_bank_count(self):
        with pytest.raises(ValueError):
            SetInterleaving(3)

    def test_bad_page_size(self):
        with pytest.raises(ValueError):
            PageToBank(4, line_bytes=64, page_bytes=32)


@given(st.sampled_from(policy_names()),
       st.sampled_from([1, 2, 4, 8, 16]),
       st.integers(min_value=0, max_value=(1 << 40) // 64))
def test_bank_always_in_range(name, num_banks, line_index):
    policy = make_policy(name, num_banks)
    assert 0 <= policy.bank_of(line_index * 64) < num_banks


@given(st.sampled_from([2, 4, 8]))
def test_interleaving_balances_dense_sweep(num_banks):
    """A dense sweep of N*banks lines lands exactly N on each bank."""
    policy = SetInterleaving(num_banks, line_bytes=64)
    counts = [0] * num_banks
    for line in range(num_banks * 10):
        counts[policy.bank_of(line * 64)] += 1
    assert counts == [10] * num_banks
