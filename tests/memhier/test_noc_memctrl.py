"""Tests for the NoC models and the memory controller."""

import pytest

from repro.memhier.memctrl import MemoryController
from repro.memhier.noc import (
    CrossbarNoC,
    MeshNoC,
    NocConfig,
    NocError,
    make_noc,
)
from repro.memhier.request import MemRequest, RequestKind
from repro.sparta.scheduler import Scheduler
from repro.sparta.unit import Unit


@pytest.fixture
def root():
    return Unit("top", scheduler=Scheduler())


class TestCrossbar:
    def test_fixed_latency_delivery(self, root):
        noc = CrossbarNoC("noc", root, latency=6)
        received = []
        noc.attach("a", lambda payload: None)
        noc.attach("b", received.append)
        noc.route("a", "b", "msg")
        root.scheduler.advance_to(6)
        assert received == []
        root.scheduler.advance_to(7)
        assert received == ["msg"]

    def test_unknown_endpoint(self, root):
        noc = CrossbarNoC("noc", root)
        noc.attach("a", lambda _: None)
        with pytest.raises(NocError):
            noc.route("a", "nope", "x")
        with pytest.raises(NocError):
            noc.route("nope", "a", "x")

    def test_duplicate_endpoint(self, root):
        noc = CrossbarNoC("noc", root)
        noc.attach("a", lambda _: None)
        with pytest.raises(NocError):
            noc.attach("a", lambda _: None)

    def test_message_counting(self, root):
        # link_utilisation reports physical links: for a crossbar the
        # per-endpoint port wires, not (source, destination) pairs.
        noc = CrossbarNoC("noc", root, latency=1)
        noc.attach("a", lambda _: None)
        noc.attach("b", lambda _: None)
        noc.route("a", "b", 1)
        noc.route("a", "b", 2)
        noc.route("b", "a", 3)
        assert noc.link_utilisation() == {("a", "tx"): 2, ("b", "rx"): 2,
                                          ("b", "tx"): 1, ("a", "rx"): 1}

    def test_negative_latency_rejected(self, root):
        with pytest.raises(ValueError):
            CrossbarNoC("noc", root, latency=-1)


class TestMesh:
    def test_xy_distance_latency(self, root):
        mesh = MeshNoC("mesh", root, columns=2, router_latency=1,
                       link_latency=1)
        for name in ("e0", "e1", "e2", "e3"):  # (0,0) (1,0) (0,1) (1,1)
            mesh.attach(name, lambda _: None)
        assert mesh.route_latency("e0", "e0") == 1      # 0 hops
        assert mesh.route_latency("e0", "e1") == 3      # 1 hop
        assert mesh.route_latency("e0", "e3") == 5      # 2 hops

    def test_manual_placement(self, root):
        mesh = MeshNoC("mesh", root, columns=4)
        mesh.attach("far", lambda _: None)
        mesh.attach("near", lambda _: None)
        mesh.place("far", 3, 3)
        mesh.place("near", 0, 0)
        assert mesh.route_latency("near", "far") > \
            mesh.route_latency("near", "near")

    def test_rows(self, root):
        mesh = MeshNoC("mesh", root, columns=2)
        for index in range(5):
            mesh.attach(f"e{index}", lambda _: None)
        assert mesh.rows() == 3

    def test_factory(self, root):
        assert isinstance(make_noc("crossbar", "a", root), CrossbarNoC)
        assert isinstance(make_noc("mesh", "b", root), MeshNoC)
        torus = make_noc("torus", "c", root)
        assert isinstance(torus, MeshNoC) and torus.wrap
        with pytest.raises(ValueError):
            make_noc("hypercube", "d", root)

    def test_factory_from_config(self, root):
        xbar = make_noc(NocConfig(latency=9), "e", root)
        assert isinstance(xbar, CrossbarNoC) and xbar.latency == 9
        mesh = make_noc(NocConfig(kind="mesh", columns=2,
                                  routing="adaptive"), "f", root)
        assert isinstance(mesh, MeshNoC)
        assert mesh.columns == 2 and mesh.routing == "adaptive"


def make_request(request_id=1, line=0x1000, kind=RequestKind.LOAD,
                 issue_cycle=0):
    request = MemRequest(request_id=request_id, core_id=0, tile_id=0,
                         line_address=line, kind=kind,
                         issue_cycle=issue_cycle)
    request.fill_target = "bank0.fill"
    return request


class McHarness:
    def __init__(self, **kwargs):
        self.scheduler = Scheduler()
        self.root = Unit("top", scheduler=self.scheduler)
        self.sent = []
        self.mc = MemoryController("mc0", self.root,
                                   send=lambda s, d, p:
                                   self.sent.append((d, p)), **kwargs)


class TestMemoryController:
    def test_read_latency(self):
        harness = McHarness(latency=100, cycles_per_request=2)
        harness.mc.handle_request(make_request())
        harness.scheduler.advance_to(100)
        assert harness.sent == []
        harness.scheduler.advance_to(101)
        assert len(harness.sent) == 1
        assert harness.sent[0][0] == "bank0.fill"

    def test_bandwidth_serialises_requests(self):
        harness = McHarness(latency=10, cycles_per_request=4)
        for index in range(3):
            harness.mc.handle_request(make_request(request_id=index,
                                                   line=0x40 * index))
        # Service starts at 0, 4, 8 -> responses at 10, 14, 18.
        harness.scheduler.advance_to(11)
        assert len(harness.sent) == 1
        harness.scheduler.advance_to(15)
        assert len(harness.sent) == 2
        harness.scheduler.advance_to(19)
        assert len(harness.sent) == 3

    def test_queue_cycles_counted(self):
        harness = McHarness(latency=10, cycles_per_request=4)
        harness.mc.handle_request(make_request(1))
        harness.mc.handle_request(make_request(2, line=0x80))
        assert harness.mc.stats._counters["queue_cycles"].value == 4

    def test_writeback_no_response(self):
        harness = McHarness()
        harness.mc.handle_request(make_request(
            kind=RequestKind.WRITEBACK))
        harness.scheduler.advance_to(300)
        assert harness.sent == []
        assert harness.mc.stats._counters["writes"].value == 1

    def test_utilisation(self):
        harness = McHarness(latency=10, cycles_per_request=5)
        harness.mc.handle_request(make_request())
        assert harness.mc.utilisation(10) == 0.5

    def test_prefetch_accelerates_sequential_reads(self):
        plain = McHarness(latency=100, cycles_per_request=2)
        pref = McHarness(latency=100, cycles_per_request=2,
                         prefetch_depth=2, line_bytes=64)
        # First read at line 0, second at line 64 (sequential).
        for harness in (plain, pref):
            harness.mc.handle_request(make_request(1, line=0))
            harness.scheduler.advance_to(150)
            harness.mc.handle_request(make_request(2, line=64))
            harness.scheduler.run_until_idle()
        plain_done = plain.sent[-1]
        pref_done = pref.sent[-1]
        # With prefetching the second response left much sooner: compare
        # prefetch counter and the scheduler completion times.
        assert pref.mc.stats._counters["prefetches"].value >= 2
        assert pref.scheduler.current_cycle < plain.scheduler.current_cycle

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            McHarness(latency=0)
        with pytest.raises(ValueError):
            McHarness(cycles_per_request=0)
        with pytest.raises(ValueError):
            McHarness(prefetch_depth=-1)
