"""Tests for workload data generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.data import (
    banded_csr,
    clustered_csr,
    dense_matrix,
    dense_vector,
    random_csr,
)


class TestDense:
    def test_shape_and_range(self):
        matrix = dense_matrix(8, 4, seed=1)
        assert matrix.shape == (8, 4)
        assert np.all(np.abs(matrix) <= 1.0)

    def test_reproducible(self):
        assert np.array_equal(dense_matrix(4, 4, seed=7),
                              dense_matrix(4, 4, seed=7))

    def test_seeds_differ(self):
        assert not np.array_equal(dense_matrix(4, 4, seed=1),
                                  dense_matrix(4, 4, seed=2))

    def test_vector(self):
        assert dense_vector(10, seed=3).shape == (10,)


class TestRandomCsr:
    def test_structure(self):
        matrix = random_csr(8, 8, 3, seed=0)
        assert matrix.nnz == 24
        assert len(matrix.row_pointers) == 9
        assert matrix.row_pointers[-1] == 24

    def test_columns_in_range_and_unique_per_row(self):
        matrix = random_csr(16, 16, 5, seed=1)
        for row in range(16):
            start, end = matrix.row_pointers[row], \
                matrix.row_pointers[row + 1]
            cols = matrix.col_indices[start:end]
            assert len(set(cols)) == len(cols)
            assert np.all((cols >= 0) & (cols < 16))

    def test_too_many_nnz_rejected(self):
        with pytest.raises(ValueError):
            random_csr(4, 4, 5)

    def test_multiply_matches_dense(self):
        matrix = random_csr(12, 12, 4, seed=2)
        x = dense_vector(12, seed=3)
        assert np.allclose(matrix.multiply(x), matrix.to_dense() @ x)


class TestBandedCsr:
    def test_band_structure(self):
        matrix = banded_csr(10, bandwidth=2, seed=0)
        for row in range(10):
            start, end = matrix.row_pointers[row], \
                matrix.row_pointers[row + 1]
            cols = matrix.col_indices[start:end]
            assert np.all(np.abs(cols - row) <= 2)

    def test_multiply_matches_dense(self):
        matrix = banded_csr(10, bandwidth=1, seed=1)
        x = dense_vector(10, seed=2)
        assert np.allclose(matrix.multiply(x), matrix.to_dense() @ x)


class TestClusteredCsr:
    def test_cluster_width_respected(self):
        matrix = clustered_csr(20, 64, nnz_per_row=4, cluster_width=8,
                               seed=0)
        for row in range(20):
            start, end = matrix.row_pointers[row], \
                matrix.row_pointers[row + 1]
            cols = matrix.col_indices[start:end]
            assert cols.max() - cols.min() < 8

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            clustered_csr(4, 16, nnz_per_row=8, cluster_width=4)


class TestEll:
    def test_ell_width_is_max_row(self):
        matrix = random_csr(8, 8, 3, seed=0)
        _values, _columns, width = matrix.to_ell()
        assert width == 3

    def test_ell_reconstructs_spmv(self):
        matrix = random_csr(8, 8, 3, seed=4)
        values, columns, width = matrix.to_ell()
        x = dense_vector(8, seed=5)
        y = np.zeros(8)
        for slot in range(width):
            y += values[slot] * x[columns[slot]]
        assert np.allclose(y, matrix.multiply(x))

    def test_ragged_rows_padded(self):
        matrix = banded_csr(6, bandwidth=2, seed=0)  # edge rows shorter
        values, columns, width = matrix.to_ell()
        assert values.shape == (width, 6)
        assert columns.shape == (width, 6)


@settings(max_examples=20)
@given(st.integers(min_value=1, max_value=32),
       st.integers(min_value=1, max_value=8),
       st.integers(min_value=0, max_value=100))
def test_random_csr_always_consistent(rows, nnz, seed):
    nnz = min(nnz, rows)
    matrix = random_csr(rows, rows, nnz, seed=seed)
    assert matrix.row_pointers[0] == 0
    assert np.all(np.diff(matrix.row_pointers) == nnz)
    assert len(matrix.values) == len(matrix.col_indices) == matrix.nnz
