"""Tests for the future-work kernels: FFT and neural-network layers."""

import numpy as np
import pytest

from repro.coyote import Simulation, SimulationConfig
from repro.kernels import dense_relu_layer, fft_radix2, mlp_inference
from repro.kernels.fft import _bit_reverse_permutation
from repro.spike import SpikeSimulator


class TestBitReversal:
    def test_length_8(self):
        assert list(_bit_reverse_permutation(8)) == \
            [0, 4, 2, 6, 1, 5, 3, 7]

    def test_is_involution(self):
        perm = _bit_reverse_permutation(64)
        assert np.array_equal(perm[perm], np.arange(64))


class TestFft:
    @pytest.mark.parametrize("length", [2, 4, 16, 64])
    def test_matches_numpy(self, length):
        workload = fft_radix2(length=length, num_cores=1)
        simulator = SpikeSimulator(workload.program, num_cores=1)
        simulator.run()
        assert workload.verify(simulator.machine.memory)

    @pytest.mark.parametrize("cores", [2, 4, 8])
    def test_multicore_with_barriers(self, cores):
        workload = fft_radix2(length=64, num_cores=cores)
        simulator = SpikeSimulator(workload.program, num_cores=cores)
        simulator.run()
        assert workload.verify(simulator.machine.memory)

    def test_under_coyote(self):
        workload = fft_radix2(length=32, num_cores=4)
        simulation = Simulation(SimulationConfig.for_cores(4),
                                workload.program)
        results = simulation.run()
        assert results.succeeded()
        assert workload.verify(simulation.memory)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            fft_radix2(length=24)
        with pytest.raises(ValueError):
            fft_radix2(length=1)

    def test_metadata(self):
        workload = fft_radix2(length=16)
        assert workload.metadata["stages"] == 4


class TestDenseRelu:
    @pytest.mark.parametrize("cores", [1, 2, 4])
    def test_matches_numpy(self, cores):
        workload = dense_relu_layer(in_dim=16, out_dim=24,
                                    num_cores=cores)
        simulator = SpikeSimulator(workload.program, num_cores=cores)
        simulator.run()
        assert workload.verify(simulator.machine.memory)

    def test_relu_clamps_negatives(self):
        """The verifier compares against relu'd outputs, so some output
        must actually be zero for the clamp to be exercised."""
        workload = dense_relu_layer(in_dim=16, out_dim=24, seed=3)
        assert np.any(workload.expected == 0.0)
        assert np.any(workload.expected > 0.0)

    def test_rectangular_shapes(self):
        workload = dense_relu_layer(in_dim=40, out_dim=8, num_cores=2)
        simulator = SpikeSimulator(workload.program, num_cores=2)
        simulator.run()
        assert workload.verify(simulator.machine.memory)


class TestMlp:
    def test_two_layers(self):
        workload = mlp_inference(dims=(16, 24, 12), num_cores=2)
        simulator = SpikeSimulator(workload.program, num_cores=2)
        simulator.run()
        assert workload.verify(simulator.machine.memory)

    def test_deep_network(self):
        workload = mlp_inference(dims=(8, 16, 16, 16, 4), num_cores=4)
        simulator = SpikeSimulator(workload.program, num_cores=4)
        simulator.run()
        assert workload.verify(simulator.machine.memory)

    def test_under_coyote(self):
        workload = mlp_inference(dims=(16, 16, 8), num_cores=2)
        simulation = Simulation(SimulationConfig.for_cores(2),
                                workload.program)
        results = simulation.run()
        assert results.succeeded()
        assert workload.verify(simulation.memory)

    def test_needs_two_dims(self):
        with pytest.raises(ValueError):
            mlp_inference(dims=(8,))
