"""Tests for the HPDA histogram kernel (shared atomic bins)."""

import numpy as np
import pytest

from repro.coyote import Simulation, SimulationConfig
from repro.kernels import histogram
from repro.spike import SpikeSimulator


class TestHistogram:
    @pytest.mark.parametrize("cores", [1, 2, 4, 8])
    def test_counts_exact(self, cores):
        """Atomic updates must never lose an increment, at any core
        count and interleaving."""
        workload = histogram(length=256, num_bins=16, num_cores=cores)
        simulator = SpikeSimulator(workload.program, num_cores=cores)
        simulator.run()
        assert workload.verify(simulator.machine.memory)

    def test_total_equals_samples(self):
        workload = histogram(length=200, num_bins=8, num_cores=4)
        simulator = SpikeSimulator(workload.program, num_cores=4)
        simulator.run()
        bins_address = workload.program.symbols["hist_bins"]
        raw = simulator.machine.memory.load_bytes(bins_address, 8 * 8)
        assert int(np.frombuffer(raw, dtype=np.uint64).sum()) == 200

    def test_under_coyote(self):
        workload = histogram(length=128, num_bins=16, num_cores=4)
        simulation = Simulation(SimulationConfig.for_cores(4),
                                workload.program)
        results = simulation.run()
        assert results.succeeded()
        assert workload.verify(simulation.memory)

    def test_interleave_independence(self):
        """Results identical under different ISS interleavings — the
        atomics make the outcome schedule-independent."""
        outcomes = []
        for interleave in (1, 13):
            workload = histogram(length=128, num_bins=8, num_cores=4,
                                 seed=9)
            simulator = SpikeSimulator(workload.program, num_cores=4,
                                       interleave=interleave)
            simulator.run()
            address = workload.program.symbols["hist_bins"]
            outcomes.append(
                simulator.machine.memory.load_bytes(address, 64))
        assert outcomes[0] == outcomes[1]

    def test_power_of_two_bins_required(self):
        with pytest.raises(ValueError):
            histogram(num_bins=10)

    def test_skewed_bins_allowed(self):
        """All samples can land in few bins; counts still exact."""
        workload = histogram(length=64, num_bins=2, num_cores=4)
        simulator = SpikeSimulator(workload.program, num_cores=4)
        simulator.run()
        assert workload.verify(simulator.machine.memory)
