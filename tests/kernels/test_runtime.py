"""Tests for the kernel runtime scaffolding (emitters, range split)."""

import numpy as np
import pytest

from repro.assembler import assemble
from repro.kernels.runtime import (
    emit_doubles,
    emit_dwords,
    emit_zero_doubles,
    range_split,
    read_doubles,
    read_dwords,
    wrap_program,
)
from repro.spike import SpikeSimulator


class TestEmitters:
    def assemble_data(self, data_text: str):
        program = assemble(f".data\n{data_text}", data_base=0x2000)
        return program

    def test_emit_doubles_round_trip(self):
        values = np.array([1.5, -2.25, 3.14159, 0.0])
        program = self.assemble_data(emit_doubles("arr", values))
        from repro.soc.memory import SparseMemory
        memory = SparseMemory()
        program.load_into(memory)
        out = read_doubles(memory, program.symbols["arr"], 4)
        assert np.array_equal(out, values)

    def test_emit_doubles_exact_bits(self):
        """repr-based emission must preserve float64 bit patterns."""
        values = np.array([0.1, 1 / 3, np.pi, 1e-300, 1e300])
        program = self.assemble_data(emit_doubles("arr", values))
        from repro.soc.memory import SparseMemory
        memory = SparseMemory()
        program.load_into(memory)
        out = read_doubles(memory, program.symbols["arr"], len(values))
        assert out.tobytes() == values.tobytes()

    def test_emit_dwords_round_trip(self):
        values = [0, 1, 2**63, 2**64 - 1]
        program = self.assemble_data(emit_dwords("arr", values))
        from repro.soc.memory import SparseMemory
        memory = SparseMemory()
        program.load_into(memory)
        out = read_dwords(memory, program.symbols["arr"], 4)
        assert list(out) == values

    def test_emit_zero_doubles(self):
        program = self.assemble_data(
            emit_zero_doubles("buf", 5) + emit_dwords("after", [7]))
        assert program.symbols["after"] - program.symbols["buf"] == 40

    def test_empty_arrays(self):
        program = self.assemble_data(
            emit_doubles("a", []) + emit_dwords("b", []))
        assert "a" in program.symbols and "b" in program.symbols

    def test_alignment(self):
        program = self.assemble_data(
            ".byte 1\n" + emit_doubles("arr", [1.0]))
        assert program.symbols["arr"] % 8 == 0


class TestRangeSplit:
    def run_split(self, total: int, cores: int) -> list[tuple[int, int]]:
        """Execute the splitter on every hart; returns (start, end)."""
        body = f"""\
main:
{range_split(total, cores)}
    la   t5, starts
    slli t6, a0, 3
    add  t5, t5, t6
    sd   s0, 0(t5)
    la   t5, ends
    add  t5, t5, t6
    sd   s1, 0(t5)
    li   a0, 0
    ret
"""
        data = (f".align 3\nstarts: .zero {8 * cores}\n"
                f"ends: .zero {8 * cores}\n")
        program = assemble(wrap_program(body, data))
        simulator = SpikeSimulator(program, num_cores=cores)
        simulator.run()
        memory = simulator.machine.memory
        starts = read_dwords(memory, program.symbols["starts"], cores)
        ends = read_dwords(memory, program.symbols["ends"], cores)
        return list(zip(starts.tolist(), ends.tolist()))

    @pytest.mark.parametrize("total,cores", [
        (16, 4), (17, 4), (3, 4), (1, 1), (7, 3), (100, 8),
    ])
    def test_partition_covers_exactly(self, total, cores):
        ranges = self.run_split(total, cores)
        covered = []
        for start, end in ranges:
            assert start <= end
            covered.extend(range(start, end))
        assert sorted(covered) == list(range(total))

    def test_remainder_goes_to_low_harts(self):
        ranges = self.run_split(10, 4)  # 3,3,2,2
        sizes = [end - start for start, end in ranges]
        assert sizes == [3, 3, 2, 2]

    def test_unique_labels_per_expansion(self):
        """Two splits in one program must not collide on labels."""
        text = range_split(8, 2) + range_split(8, 2)
        assert text.count("rs_done_") == 4  # 2 defs + 2 uses
        program = assemble(wrap_program(
            f"main:\n{text}    li a0, 0\n    ret\n", ""))
        assert program.total_bytes() > 0
