"""End-to-end kernel tests: every kernel verified against numpy on both
the raw ISS and the full Coyote model, across core counts."""

import numpy as np
import pytest

from repro.coyote import Simulation, SimulationConfig
from repro.kernels import (
    banded_csr,
    clustered_csr,
    dense_vector,
    reference_stencil,
    scalar_matmul,
    scalar_spmv,
    spmv_csr_gather_accum,
    spmv_csr_gather_reduce,
    spmv_ell,
    stream_triad,
    vector_axpy,
    vector_dot,
    vector_matmul,
    vector_stencil,
)
from repro.spike import SpikeSimulator

SMALL_KERNELS = [
    ("scalar-matmul", lambda cores: scalar_matmul(size=8,
                                                  num_cores=cores)),
    ("vector-matmul", lambda cores: vector_matmul(size=8,
                                                  num_cores=cores)),
    ("scalar-spmv", lambda cores: scalar_spmv(num_rows=16, nnz_per_row=4,
                                              num_cores=cores)),
    ("spmv-gather-reduce",
     lambda cores: spmv_csr_gather_reduce(num_rows=16, nnz_per_row=4,
                                          num_cores=cores)),
    ("spmv-gather-accum",
     lambda cores: spmv_csr_gather_accum(num_rows=16, nnz_per_row=4,
                                         num_cores=cores)),
    ("spmv-ell", lambda cores: spmv_ell(num_rows=16, nnz_per_row=4,
                                        num_cores=cores)),
    ("vector-stencil", lambda cores: vector_stencil(length=48,
                                                    iterations=2,
                                                    num_cores=cores)),
    ("vector-axpy", lambda cores: vector_axpy(length=48,
                                              num_cores=cores)),
    ("stream-triad", lambda cores: stream_triad(length=48,
                                                num_cores=cores)),
    ("vector-dot", lambda cores: vector_dot(length=48, num_cores=cores)),
]


@pytest.mark.parametrize("cores", [1, 2, 4])
@pytest.mark.parametrize("name,factory", SMALL_KERNELS,
                         ids=[name for name, _ in SMALL_KERNELS])
def test_kernel_on_raw_iss(name, factory, cores):
    workload = factory(cores)
    simulator = SpikeSimulator(workload.program, num_cores=cores)
    simulator.run()
    assert simulator.machine.all_succeeded()
    assert workload.verify(simulator.machine.memory), \
        f"{name} output mismatch at {cores} cores"


@pytest.mark.parametrize("name,factory", SMALL_KERNELS,
                         ids=[name for name, _ in SMALL_KERNELS])
def test_kernel_on_coyote(name, factory):
    cores = 2
    workload = factory(cores)
    simulation = Simulation(SimulationConfig.for_cores(cores),
                            workload.program)
    results = simulation.run()
    assert results.succeeded()
    assert workload.verify(simulation.memory), \
        f"{name} output mismatch under Coyote"
    assert results.instructions > 0 and results.cycles > 0


class TestKernelVariantsAgree:
    """All four SpMV implementations must produce identical y vectors."""

    def test_spmv_variants_same_result(self):
        matrix = banded_csr(24, bandwidth=3, seed=11)
        x = dense_vector(24, seed=12)
        outputs = []
        for factory in (scalar_spmv, spmv_csr_gather_reduce,
                        spmv_csr_gather_accum, spmv_ell):
            workload = factory(num_cores=2, matrix=matrix, x=x)
            simulator = SpikeSimulator(workload.program, num_cores=2)
            simulator.run()
            address = workload.program.symbols["vec_y"]
            raw = simulator.machine.memory.load_bytes(address, 8 * 24)
            outputs.append(np.frombuffer(raw, dtype=np.float64))
        for output in outputs[1:]:
            assert np.allclose(output, outputs[0], rtol=1e-10)

    def test_spmv_on_clustered_matrix(self):
        matrix = clustered_csr(16, 16, nnz_per_row=4, cluster_width=8,
                               seed=3)
        x = dense_vector(16, seed=4)
        workload = spmv_csr_gather_reduce(num_cores=2, matrix=matrix, x=x)
        simulator = SpikeSimulator(workload.program, num_cores=2)
        simulator.run()
        assert workload.verify(simulator.machine.memory)


class TestStencil:
    def test_reference_matches_manual(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        result = reference_stencil(data, (0.25, 0.5, 0.25), 1)
        assert result[0] == 1.0 and result[-1] == 4.0
        assert result[1] == 0.25 * 1 + 0.5 * 2 + 0.25 * 3

    def test_many_iterations_with_barrier(self):
        workload = vector_stencil(length=32, iterations=5, num_cores=4)
        simulator = SpikeSimulator(workload.program, num_cores=4)
        simulator.run()
        assert workload.verify(simulator.machine.memory)

    def test_single_core_no_barrier_contention(self):
        workload = vector_stencil(length=32, iterations=3, num_cores=1)
        simulator = SpikeSimulator(workload.program, num_cores=1)
        simulator.run()
        assert workload.verify(simulator.machine.memory)

    def test_validation(self):
        with pytest.raises(ValueError):
            vector_stencil(length=2)
        with pytest.raises(ValueError):
            vector_stencil(iterations=0)


class TestWorkRanges:
    """The hart-range splitter must cover every element exactly once."""

    @pytest.mark.parametrize("rows,cores", [(7, 2), (16, 3), (5, 4),
                                            (9, 8)])
    def test_uneven_split_still_correct(self, rows, cores):
        workload = scalar_spmv(num_rows=rows, nnz_per_row=2,
                               num_cores=cores, seed=9)
        simulator = SpikeSimulator(workload.program, num_cores=cores)
        simulator.run()
        assert workload.verify(simulator.machine.memory)

    def test_more_cores_than_rows(self):
        workload = vector_axpy(length=3, num_cores=8)
        simulator = SpikeSimulator(workload.program, num_cores=8)
        simulator.run()
        assert workload.verify(simulator.machine.memory)


class TestWorkloadMetadata:
    def test_repr(self):
        workload = scalar_matmul(size=4, num_cores=2)
        text = repr(workload)
        assert "scalar-matmul" in text and "cores=2" in text

    def test_metadata_recorded(self):
        workload = vector_matmul(size=4, num_cores=1, seed=5)
        assert workload.metadata["size"] == 4
        assert workload.metadata["seed"] == 5

    def test_expected_stored(self):
        workload = scalar_matmul(size=4, num_cores=1)
        assert workload.expected.shape == (16,)
