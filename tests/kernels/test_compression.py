"""Tests for the §IV value-compression SpMV kernel."""

import numpy as np
import pytest

from repro.coyote import Simulation, SimulationConfig
from repro.kernels import (
    dense_vector,
    quantise_matrix,
    random_csr,
    spmv_csr_compressed,
)
from repro.spike import SpikeSimulator


class TestQuantise:
    def test_values_snap_to_dictionary(self):
        matrix = random_csr(8, 8, 3, seed=1)
        quantised, dictionary, codes = quantise_matrix(matrix, levels=4,
                                                       seed=2)
        assert set(np.unique(quantised.values)) <= set(dictionary)
        assert np.all(dictionary[codes] == quantised.values)

    def test_structure_preserved(self):
        matrix = random_csr(8, 8, 3, seed=1)
        quantised, _dict, _codes = quantise_matrix(matrix, levels=4)
        assert np.array_equal(quantised.col_indices, matrix.col_indices)
        assert np.array_equal(quantised.row_pointers,
                              matrix.row_pointers)

    def test_idempotent_on_quantised_input(self):
        matrix = random_csr(8, 8, 3, seed=1)
        once, _d, _c = quantise_matrix(matrix, levels=8, seed=3)
        twice, _d2, _c2 = quantise_matrix(once, levels=8, seed=3)
        assert np.allclose(once.values, twice.values)

    def test_levels_validated(self):
        matrix = random_csr(4, 4, 2, seed=1)
        with pytest.raises(ValueError):
            quantise_matrix(matrix, levels=0)
        with pytest.raises(ValueError):
            quantise_matrix(matrix, levels=1 << 17)


class TestCompressedKernel:
    @pytest.mark.parametrize("cores", [1, 2, 4])
    def test_verifies_on_iss(self, cores):
        workload = spmv_csr_compressed(num_rows=24, nnz_per_row=4,
                                       num_cores=cores)
        simulator = SpikeSimulator(workload.program, num_cores=cores)
        simulator.run()
        assert workload.verify(simulator.machine.memory)

    def test_verifies_under_coyote(self):
        workload = spmv_csr_compressed(num_rows=24, nnz_per_row=4,
                                       num_cores=2)
        simulation = Simulation(SimulationConfig.for_cores(2),
                                workload.program)
        results = simulation.run()
        assert results.succeeded()
        assert workload.verify(simulation.memory)

    def test_value_stream_is_quarter_size(self):
        """u16 code stream occupies a quarter of the float64 stream."""
        workload = spmv_csr_compressed(num_rows=32, nnz_per_row=8,
                                       num_cores=1)
        symbols = workload.program.symbols
        nnz = workload.metadata["nnz"]
        # Codes array spans 2*nnz bytes, where floats would span 8*nnz.
        code_span = symbols["cmp_dict"] - symbols["cmp_codes"]
        assert 2 * nnz <= code_span < 2 * nnz + 8  # alignment padding

    def test_more_levels_better_fidelity(self):
        matrix = random_csr(16, 16, 4, seed=5)
        x = dense_vector(16, seed=6)
        exact = matrix.multiply(x)
        errors = []
        for levels in (2, 16, 256):
            quantised, _d, _c = quantise_matrix(matrix, levels, seed=7)
            errors.append(
                float(np.abs(quantised.multiply(x) - exact).max()))
        assert errors[0] > errors[1] > errors[2]
