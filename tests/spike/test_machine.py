"""Tests for the bare-metal machine (HTIF protocol, boot state)."""

from repro.assembler import assemble
from repro.spike.machine import BareMetalMachine
from repro.spike.simulator import SpikeSimulator


EXIT_PROGRAM = """
.text
_start:
    csrr a0, mhartid
    slli a1, a0, 1
    ori  a1, a1, 1
    la   t0, tohost
    sd   a1, 0(t0)
spin:
    j spin
.data
.align 3
tohost: .dword 0
"""


class TestBoot:
    def test_harts_boot_at_entry(self):
        program = assemble(EXIT_PROGRAM)
        machine = BareMetalMachine(program, num_cores=3)
        assert all(hart.pc == program.entry for hart in machine.harts)

    def test_a0_holds_hartid(self):
        program = assemble(EXIT_PROGRAM)
        machine = BareMetalMachine(program, num_cores=3)
        assert [hart.regs[10] for hart in machine.harts] == [0, 1, 2]

    def test_stacks_are_disjoint(self):
        program = assemble(EXIT_PROGRAM)
        machine = BareMetalMachine(program, num_cores=4)
        stacks = [hart.regs[2] for hart in machine.harts]
        assert len(set(stacks)) == 4

    def test_program_loaded(self):
        program = assemble(EXIT_PROGRAM)
        machine = BareMetalMachine(program, num_cores=1)
        first_word = machine.memory.load_int(program.entry, 4)
        assert first_word != 0


class TestHtifExit:
    def test_per_hart_exit_codes(self):
        program = assemble(EXIT_PROGRAM)
        simulator = SpikeSimulator(program, num_cores=3)
        simulator.run()
        # Each hart exits with code == its hartid.
        assert simulator.machine.exit_codes == {0: 0, 1: 1, 2: 2}

    def test_all_succeeded(self):
        source = EXIT_PROGRAM.replace("slli a1, a0, 1", "li a1, 0\n")
        simulator = SpikeSimulator(assemble(source), num_cores=2)
        simulator.run()
        assert simulator.machine.all_succeeded()

    def test_console_output(self):
        source = """
.text
_start:
    la   t0, tohost
    li   t1, 0x0101000000000000 + 'H'
    sd   t1, 0(t0)
    li   t1, 0x0101000000000000 + 'i'
    sd   t1, 0(t0)
    li   t2, 1
    sd   t2, 0(t0)
halt:
    j halt
.data
.align 3
tohost: .dword 0
"""
        simulator = SpikeSimulator(assemble(source), num_cores=1)
        simulator.run()
        assert simulator.machine.console_text() == "Hi"

    def test_console_cleared_after_putchar(self):
        source = """
.text
_start:
    la   t0, tohost
    li   t1, 0x0101000000000000 + 'X'
    sd   t1, 0(t0)
    ld   a0, 0(t0)
    slli a0, a0, 1
    ori  a0, a0, 1
    sd   a0, 0(t0)
halt:
    j halt
.data
.align 3
tohost: .dword 0
"""
        simulator = SpikeSimulator(assemble(source), num_cores=1)
        simulator.run()
        # tohost was zeroed after the putchar, so exit code is 0.
        assert simulator.machine.exit_codes[0] == 0

    def test_no_tohost_symbol_is_harmless(self):
        program = assemble(".text\n_start:\nnop\nebreak\n")
        machine = BareMetalMachine(program, num_cores=1)
        hart = machine.harts[0]
        hart.step()
        event = machine.check_htif(hart.accesses, hart)
        assert not event.exited
