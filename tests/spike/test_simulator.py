"""Tests for the raw multicore ISS and the CoreModel."""

import pytest

from repro.assembler import assemble
from repro.spike.machine import BareMetalMachine
from repro.spike.simulator import (
    AccessKind,
    CoreModel,
    L1Config,
    SpikeSimulator,
    StepStatus,
)


COUNTER_PROGRAM = """
.text
_start:
    csrr a0, mhartid
    la   t0, counters
    slli t1, a0, 3
    add  t0, t0, t1
    li   t2, 100
loop:
    addi t2, t2, -1
    bnez t2, loop
    sd   a0, 0(t0)
    li   a1, 1
    la   t3, tohost
    sd   a1, 0(t3)
halt:
    j halt
.data
.align 3
tohost:   .dword 0
counters: .zero 64
"""


class TestSpikeSimulator:
    def test_single_core_runs_to_completion(self):
        simulator = SpikeSimulator(assemble(COUNTER_PROGRAM), num_cores=1)
        instructions = simulator.run()
        assert instructions > 200

    def test_multicore_all_halt(self):
        simulator = SpikeSimulator(assemble(COUNTER_PROGRAM), num_cores=4)
        simulator.run()
        assert all(simulator.halted)
        memory = simulator.machine.memory
        base = simulator.machine.program.symbols["counters"]
        assert [memory.load_int(base + 8 * i, 8) for i in range(4)] == \
            [0, 1, 2, 3]

    def test_interleave_same_result(self):
        results = []
        for interleave in (1, 7, 100):
            simulator = SpikeSimulator(assemble(COUNTER_PROGRAM),
                                       num_cores=2, interleave=interleave)
            simulator.run()
            memory = simulator.machine.memory
            base = simulator.machine.program.symbols["counters"]
            results.append([memory.load_int(base + 8 * i, 8)
                            for i in range(2)])
        assert results[0] == results[1] == results[2]

    def test_instruction_budget_enforced(self):
        source = ".text\n_start:\nspin: j spin\n" \
                 ".data\ntohost: .dword 0\n"
        simulator = SpikeSimulator(assemble(source), num_cores=1)
        with pytest.raises(RuntimeError):
            simulator.run(max_instructions=1000)

    def test_bad_interleave_rejected(self):
        with pytest.raises(ValueError):
            SpikeSimulator(assemble(COUNTER_PROGRAM), interleave=0)


def make_core(source: str, l1: L1Config | None = None):
    program = assemble(source)
    machine = BareMetalMachine(program, num_cores=1)
    return CoreModel(machine.harts[0], machine, l1)


class TestCoreModel:
    SIMPLE = """
.text
_start:
    la  a1, buffer
    ld  a2, 0(a1)
    ld  a3, 0(a1)
    sd  a2, 0(a1)
halt:
    j halt
.data
.align 3
tohost: .dword 0
buffer: .dword 42
"""

    def test_first_step_is_fetch_miss(self):
        core = make_core(self.SIMPLE)
        outcome = core.step()
        assert outcome.status is StepStatus.FETCH_MISS
        assert outcome.misses[0].kind is AccessKind.IFETCH

    def test_fetch_hit_after_fill(self):
        core = make_core(self.SIMPLE)
        core.step()           # fetch miss allocates the I-line
        outcome = core.step()
        assert outcome.status is StepStatus.EXECUTED

    def test_load_miss_reports_dest_registers(self):
        core = make_core(self.SIMPLE)
        core.step()
        outcomes = [core.step() for _ in range(3)]  # la.hi, la.lo, ld
        load_outcome = outcomes[-1]
        load_misses = [miss for miss in load_outcome.misses
                       if miss.kind is AccessKind.LOAD]
        assert len(load_misses) == 1
        assert load_misses[0].registers == (("x", 12),)

    def test_second_load_same_line_hits(self):
        core = make_core(self.SIMPLE)
        core.step()
        for _ in range(3):
            core.step()
        outcome = core.step()  # second ld, same line
        assert outcome.status is StepStatus.EXECUTED
        assert not any(miss.kind is AccessKind.LOAD
                       for miss in outcome.misses)

    def test_store_hit_after_load_allocate(self):
        core = make_core(self.SIMPLE)
        core.step()
        for _ in range(4):
            core.step()
        outcome = core.step()  # sd to the (now resident) line
        assert not any(miss.kind is AccessKind.STORE
                       for miss in outcome.misses)

    def test_vector_load_coalesces_per_line(self):
        source = """
.text
_start:
    vsetvli a1, zero, e64, m1, ta, ma
    la a0, vdata
    vle64.v v1, (a0)
halt:
    j halt
.data
.align 6
tohost: .dword 0
.align 6
vdata: .zero 64
"""
        core = make_core(source)
        core.step()  # fetch miss
        for _ in range(3):
            core.step()
        outcome = core.step()  # vle64: 8 elements in one 64B line
        load_misses = [miss for miss in outcome.misses
                       if miss.kind is AccessKind.LOAD]
        assert len(load_misses) == 1

    def test_halted_core_steps_are_noops(self):
        core = make_core(self.SIMPLE)
        core.halted = True
        assert core.step().status is StepStatus.HALTED
