"""Differential testing of the vector unit against numpy semantics.

For every integer vector binop, at every SEW, hypothesis generates
random operand vectors; the expected result is computed with numpy
fixed-width arrays (an independent implementation of the semantics).
FP ops are checked at SEW 64 against float64 numpy arithmetic.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import make_hart, run_until_ebreak

VLEN = 256

_DTYPES = {8: (np.uint8, np.int8), 16: (np.uint16, np.int16),
           32: (np.uint32, np.int32), 64: (np.uint64, np.int64)}


def _np_vector_op(op: str, a: np.ndarray, b: np.ndarray,
                  sew: int) -> np.ndarray:
    unsigned, signed = _DTYPES[sew]
    ua, ub = a.astype(unsigned), b.astype(unsigned)
    sa, sb = ua.astype(signed), ub.astype(signed)
    shift = (ub & unsigned(sew - 1)).astype(unsigned)
    with np.errstate(over="ignore"):
        if op == "vadd":
            return (ua + ub).astype(unsigned)
        if op == "vsub":
            return (ua - ub).astype(unsigned)
        if op == "vmul":
            return (ua * ub).astype(unsigned)
        if op == "vand":
            return ua & ub
        if op == "vor":
            return ua | ub
        if op == "vxor":
            return ua ^ ub
        if op == "vsll":
            return (ua << shift).astype(unsigned)
        if op == "vsrl":
            return (ua >> shift).astype(unsigned)
        if op == "vsra":
            return (sa >> shift.astype(signed)).astype(unsigned)
        if op == "vmin":
            return np.minimum(sa, sb).astype(unsigned)
        if op == "vminu":
            return np.minimum(ua, ub)
        if op == "vmax":
            return np.maximum(sa, sb).astype(unsigned)
        if op == "vmaxu":
            return np.maximum(ua, ub)
        if op == "vmulhu":
            wide = ua.astype(object) * ub.astype(object)
            return np.array([int(x) >> sew for x in wide],
                            dtype=unsigned)
        if op == "vmulh":
            wide = sa.astype(object) * sb.astype(object)
            return np.array([(int(x) >> sew) & ((1 << sew) - 1)
                             for x in wide], dtype=unsigned)
    raise AssertionError(op)


_ELEMENT = st.integers(min_value=0, max_value=(1 << 64) - 1)
_OPS = ["vadd", "vsub", "vmul", "vand", "vor", "vxor", "vsll", "vsrl",
        "vsra", "vmin", "vminu", "vmax", "vmaxu", "vmulh", "vmulhu"]


def _run_vector_binop(op, sew, a_values, b_values):
    count = len(a_values)
    elem_bytes = sew // 8
    mask = (1 << sew) - 1

    def emit(label, values):
        lines = [f"{label}:"]
        for value in values:
            directive = {1: ".byte", 2: ".half", 4: ".word",
                         8: ".dword"}[elem_bytes]
            lines.append(f"    {directive} {value & mask}")
        return "\n".join(lines) + "\n"

    source = f""".text
_start:
    li   a2, {count}
    vsetvli a1, a2, e{sew}, m1, ta, ma
    la   a0, va
    vle{sew}.v v1, (a0)
    la   a0, vb
    vle{sew}.v v2, (a0)
    {op}.vv v3, v1, v2
    la   a0, vout
    vse{sew}.v v3, (a0)
    ebreak
.data
.align 3
{emit('va', a_values)}
.align 3
{emit('vb', b_values)}
.align 3
vout: .zero {count * elem_bytes}
"""
    hart = make_hart(source, vlen_bits=VLEN)
    run_until_ebreak(hart)
    out_address = hart.program_symbols["vout"]
    raw = hart.memory.load_bytes(out_address, count * elem_bytes)
    unsigned, _signed = _DTYPES[sew]
    return np.frombuffer(raw, dtype=unsigned)


@pytest.mark.parametrize("sew", [8, 16, 32, 64])
@pytest.mark.parametrize("op", _OPS)
@settings(max_examples=6, deadline=None)
@given(data=st.data())
def test_vector_binop_matches_numpy(op, sew, data):
    unsigned, _signed = _DTYPES[sew]
    count = data.draw(st.integers(min_value=1,
                                  max_value=VLEN // sew))
    a_values = data.draw(st.lists(_ELEMENT, min_size=count,
                                  max_size=count))
    b_values = data.draw(st.lists(_ELEMENT, min_size=count,
                                  max_size=count))
    mask = (1 << sew) - 1
    a = np.array([value & mask for value in a_values], dtype=unsigned)
    b = np.array([value & mask for value in b_values], dtype=unsigned)
    actual = _run_vector_binop(op, sew, a_values, b_values)
    expected = _np_vector_op(op, a, b, sew)
    assert np.array_equal(actual, expected), \
        f"{op}.vv e{sew}: {actual} != {expected} (a={a}, b={b})"


class TestVectorFpDifferential:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-1e10, max_value=1e10,
                              allow_nan=False),
                    min_size=1, max_size=4),
           st.lists(st.floats(min_value=-1e10, max_value=1e10,
                              allow_nan=False),
                    min_size=1, max_size=4),
           st.sampled_from(["vfadd", "vfsub", "vfmul", "vfmin",
                            "vfmax"]))
    def test_fp_binop_matches_numpy(self, a_list, b_list, op):
        count = min(len(a_list), len(b_list))
        a = np.array(a_list[:count])
        b = np.array(b_list[:count])
        reference = {"vfadd": a + b, "vfsub": a - b, "vfmul": a * b,
                     "vfmin": np.minimum(a, b),
                     "vfmax": np.maximum(a, b)}[op]
        source = f""".text
_start:
    li   a2, {count}
    vsetvli a1, a2, e64, m1, ta, ma
    la   a0, va
    vle64.v v1, (a0)
    la   a0, vb
    vle64.v v2, (a0)
    {op}.vv v3, v1, v2
    la   a0, vout
    vse64.v v3, (a0)
    ebreak
.data
.align 3
va: .double {', '.join(repr(float(x)) for x in a)}
vb: .double {', '.join(repr(float(x)) for x in b)}
vout: .zero {8 * count}
"""
        hart = make_hart(source, vlen_bits=VLEN)
        run_until_ebreak(hart)
        raw = hart.memory.load_bytes(hart.program_symbols["vout"],
                                     8 * count)
        actual = np.frombuffer(raw, dtype=np.float64)
        assert np.array_equal(actual, reference)
