"""Differential testing of scalar FP execution against numpy float64.

Random operand values (including signed zeros and extremes) flow through
each double-precision operation; expected results come from numpy, whose
IEEE-754 semantics are independent of the hart's Python-float executors.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import make_hart, run_until_ebreak

_FLOATS = st.floats(allow_nan=False, allow_infinity=False,
                    allow_subnormal=True)

_BIN_OPS = {
    "fadd.d": np.add,
    "fsub.d": np.subtract,
    "fmul.d": np.multiply,
    "fmin.d": np.minimum,
    "fmax.d": np.maximum,
}


def run_fp_binary(op: str, a: float, b: float) -> float:
    source = f""".text
_start:
    la a0, va
    fld fa0, 0(a0)
    la a0, vb
    fld fa1, 0(a0)
    {op} fa2, fa0, fa1
    la a0, vout
    fsd fa2, 0(a0)
    ebreak
.data
.align 3
va:   .double {a!r}
vb:   .double {b!r}
vout: .double 0.0
"""
    hart = make_hart(source)
    run_until_ebreak(hart)
    raw = hart.memory.load_bytes(hart.program_symbols["vout"], 8)
    return float(np.frombuffer(raw, dtype=np.float64)[0])


@pytest.mark.parametrize("op", sorted(_BIN_OPS))
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_fp_binary_matches_numpy(op, data):
    a = data.draw(_FLOATS)
    b = data.draw(_FLOATS)
    with np.errstate(over="ignore", invalid="ignore"):
        expected = float(_BIN_OPS[op](np.float64(a), np.float64(b)))
    actual = run_fp_binary(op, a, b)
    assert actual == expected or (math.isnan(actual)
                                  and math.isnan(expected)), \
        f"{op}({a!r}, {b!r}) = {actual!r}, numpy says {expected!r}"


@settings(max_examples=40, deadline=None)
@given(a=_FLOATS, b=_FLOATS, c=_FLOATS)
def test_fmadd_close_to_numpy(a, b, c):
    """Our fmadd is an unfused a*b+c (double rounding); it must agree
    with numpy's unfused computation exactly."""
    source = f""".text
_start:
    la a0, va
    fld fa0, 0(a0)
    la a0, vb
    fld fa1, 0(a0)
    la a0, vc
    fld fa2, 0(a0)
    fmadd.d fa3, fa0, fa1, fa2
    la a0, vout
    fsd fa3, 0(a0)
    ebreak
.data
.align 3
va:   .double {a!r}
vb:   .double {b!r}
vc:   .double {c!r}
vout: .double 0.0
"""
    hart = make_hart(source)
    run_until_ebreak(hart)
    raw = hart.memory.load_bytes(hart.program_symbols["vout"], 8)
    actual = float(np.frombuffer(raw, dtype=np.float64)[0])
    with np.errstate(over="ignore", invalid="ignore"):
        expected = float(np.float64(a) * np.float64(b) + np.float64(c))
    assert actual == expected or (math.isnan(actual)
                                  and math.isnan(expected))


@settings(max_examples=40, deadline=None)
@given(value=st.floats(min_value=0.0, allow_nan=False,
                       allow_infinity=False))
def test_fsqrt_matches_numpy(value):
    source = f""".text
_start:
    la a0, va
    fld fa0, 0(a0)
    fsqrt.d fa1, fa0
    la a0, vout
    fsd fa1, 0(a0)
    ebreak
.data
.align 3
va:   .double {value!r}
vout: .double 0.0
"""
    hart = make_hart(source)
    run_until_ebreak(hart)
    raw = hart.memory.load_bytes(hart.program_symbols["vout"], 8)
    actual = float(np.frombuffer(raw, dtype=np.float64)[0])
    assert actual == float(np.sqrt(np.float64(value)))


@settings(max_examples=40, deadline=None)
@given(value=st.floats(allow_nan=False, allow_infinity=False,
                       min_value=-1e18, max_value=1e18))
def test_fcvt_l_d_truncates_like_numpy(value):
    source = f""".text
_start:
    la a0, va
    fld fa0, 0(a0)
    fcvt.l.d a1, fa0
    la a0, vout
    sd a1, 0(a0)
    ebreak
.data
.align 3
va:   .double {value!r}
vout: .dword 0
"""
    hart = make_hart(source)
    run_until_ebreak(hart)
    raw = hart.memory.load_bytes(hart.program_symbols["vout"], 8)
    actual = int(np.frombuffer(raw, dtype=np.int64)[0])
    assert actual == int(np.trunc(np.float64(value)))
