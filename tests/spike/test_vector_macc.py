"""Directed tests for the vector multiply-accumulate families.

The four integer (vmacc/vnmsac/vmadd/vnmsub) and eight FP
(vfmacc/vfnmacc/vfmsac/vfnmsac/vfmadd/vfnmadd/vfmsub/vfnmsub) ops have
three-operand semantics where ``vd`` is both source and destination;
each is checked against its RVV 1.0 definition.
"""

import struct

import numpy as np
import pytest

from tests.conftest import make_hart, run_until_ebreak

VLEN = 256

# vd' = f(vd, op1, vs2) per the RVV spec.
_INT_SEMANTICS = {
    "vmacc": lambda vd, op1, vs2: vd + op1 * vs2,
    "vnmsac": lambda vd, op1, vs2: vd - op1 * vs2,
    "vmadd": lambda vd, op1, vs2: vd * op1 + vs2,
    "vnmsub": lambda vd, op1, vs2: vs2 - vd * op1,
}

_FP_SEMANTICS = {
    "vfmacc": lambda vd, op1, vs2: op1 * vs2 + vd,
    "vfnmacc": lambda vd, op1, vs2: -(op1 * vs2) - vd,
    "vfmsac": lambda vd, op1, vs2: op1 * vs2 - vd,
    "vfnmsac": lambda vd, op1, vs2: -(op1 * vs2) + vd,
    "vfmadd": lambda vd, op1, vs2: vd * op1 + vs2,
    "vfnmadd": lambda vd, op1, vs2: -(vd * op1) - vs2,
    "vfmsub": lambda vd, op1, vs2: vd * op1 - vs2,
    "vfnmsub": lambda vd, op1, vs2: -(vd * op1) + vs2,
}

_VD = [3, -2, 7, 0]
_OP1 = [5, 4, -1, 9]
_VS2 = [2, -3, 6, 1]


@pytest.mark.parametrize("op", sorted(_INT_SEMANTICS))
def test_integer_macc_vv(op):
    source = f""".text
_start:
    li   a2, 4
    vsetvli a1, a2, e64, m1, ta, ma
    la   a0, vvd
    vle64.v v8, (a0)
    la   a0, vop1
    vle64.v v1, (a0)
    la   a0, vvs2
    vle64.v v2, (a0)
    {op}.vv v8, v1, v2
    la   a0, vout
    vse64.v v8, (a0)
    ebreak
.data
.align 3
vvd:  .dword {', '.join(str(v) for v in _VD)}
vop1: .dword {', '.join(str(v) for v in _OP1)}
vvs2: .dword {', '.join(str(v) for v in _VS2)}
vout: .zero 32
"""
    hart = make_hart(source, vlen_bits=VLEN)
    run_until_ebreak(hart)
    raw = hart.memory.load_bytes(hart.program_symbols["vout"], 32)
    actual = np.frombuffer(raw, dtype=np.int64)
    expected = [_INT_SEMANTICS[op](vd, op1, vs2)
                for vd, op1, vs2 in zip(_VD, _OP1, _VS2)]
    assert list(actual) == expected


@pytest.mark.parametrize("op", sorted(_INT_SEMANTICS))
def test_integer_macc_vx(op):
    scalar = -3
    source = f""".text
_start:
    li   a2, 4
    vsetvli a1, a2, e64, m1, ta, ma
    la   a0, vvd
    vle64.v v8, (a0)
    la   a0, vvs2
    vle64.v v2, (a0)
    li   a3, {scalar}
    {op}.vx v8, a3, v2
    la   a0, vout
    vse64.v v8, (a0)
    ebreak
.data
.align 3
vvd:  .dword {', '.join(str(v) for v in _VD)}
vvs2: .dword {', '.join(str(v) for v in _VS2)}
vout: .zero 32
"""
    hart = make_hart(source, vlen_bits=VLEN)
    run_until_ebreak(hart)
    raw = hart.memory.load_bytes(hart.program_symbols["vout"], 32)
    actual = np.frombuffer(raw, dtype=np.int64)
    expected = [_INT_SEMANTICS[op](vd, scalar, vs2)
                for vd, vs2 in zip(_VD, _VS2)]
    assert list(actual) == expected


_FVD = [1.5, -2.0, 0.25, 4.0]
_FOP1 = [2.0, 3.0, -8.0, 0.5]
_FVS2 = [-1.0, 0.5, 2.0, 6.0]


@pytest.mark.parametrize("op", sorted(_FP_SEMANTICS))
def test_fp_macc_vv(op):
    source = f""".text
_start:
    li   a2, 4
    vsetvli a1, a2, e64, m1, ta, ma
    la   a0, vvd
    vle64.v v8, (a0)
    la   a0, vop1
    vle64.v v1, (a0)
    la   a0, vvs2
    vle64.v v2, (a0)
    {op}.vv v8, v1, v2
    la   a0, vout
    vse64.v v8, (a0)
    ebreak
.data
.align 3
vvd:  .double {', '.join(repr(v) for v in _FVD)}
vop1: .double {', '.join(repr(v) for v in _FOP1)}
vvs2: .double {', '.join(repr(v) for v in _FVS2)}
vout: .zero 32
"""
    hart = make_hart(source, vlen_bits=VLEN)
    run_until_ebreak(hart)
    raw = hart.memory.load_bytes(hart.program_symbols["vout"], 32)
    actual = np.frombuffer(raw, dtype=np.float64)
    expected = [_FP_SEMANTICS[op](vd, op1, vs2)
                for vd, op1, vs2 in zip(_FVD, _FOP1, _FVS2)]
    assert np.array_equal(actual, np.array(expected))


@pytest.mark.parametrize("op", ["vfmacc", "vfnmsac"])
def test_fp_macc_vf(op):
    scalar = 2.5
    source = f""".text
_start:
    li   a2, 4
    vsetvli a1, a2, e64, m1, ta, ma
    la   a0, vvd
    vle64.v v8, (a0)
    la   a0, vvs2
    vle64.v v2, (a0)
    la   a0, fsc
    fld  fa0, 0(a0)
    {op}.vf v8, fa0, v2
    la   a0, vout
    vse64.v v8, (a0)
    ebreak
.data
.align 3
vvd:  .double {', '.join(repr(v) for v in _FVD)}
vvs2: .double {', '.join(repr(v) for v in _FVS2)}
fsc:  .double {scalar!r}
vout: .zero 32
"""
    hart = make_hart(source, vlen_bits=VLEN)
    run_until_ebreak(hart)
    raw = hart.memory.load_bytes(hart.program_symbols["vout"], 32)
    actual = np.frombuffer(raw, dtype=np.float64)
    expected = [_FP_SEMANTICS[op](vd, scalar, vs2)
                for vd, vs2 in zip(_FVD, _FVS2)]
    assert np.array_equal(actual, np.array(expected))
