"""Edge-case tests for hart execution: page crossings, self-modifying
code, unusual vector configurations, multicore memory interactions."""

import pytest

from repro.soc.memory import PAGE_SIZE
from repro.spike.hart import Hart, IllegalInstructionTrap
from repro.spike.vector import VectorConfigError
from repro.utils.bitops import MASK64, to_unsigned

from tests.conftest import make_hart, run_steps, run_until_ebreak


class TestPageCrossing:
    def test_load_across_page_boundary(self):
        hart = make_hart(f""".text
_start:
    li a0, {PAGE_SIZE - 4}
    li a1, 0x1122334455667788
    sd a1, 0(a0)
    ld a2, 0(a0)
    ebreak
""")
        run_until_ebreak(hart)
        assert hart.regs[12] == 0x1122334455667788

    def test_misaligned_scalar_load_allowed(self):
        """The model permits misaligned accesses (no trap), like Spike
        with misaligned support on."""
        hart = make_hart(""".text
_start:
    la a0, data
    ld a1, 1(a0)
    ebreak
.data
.align 3
data: .dword 0x1122334455667788, 0x99
""")
        run_until_ebreak(hart)
        assert hart.regs[11] == 0x9911223344556677


class TestSelfModifyingCode:
    def test_store_then_fence_i(self):
        """Overwriting an instruction takes effect after fence.i."""
        hart = make_hart(""".text
_start:
    la   t0, patch_site
    # addi a0, zero, 99  ==  0x06300513
    li   t1, 0x06300513
    sw   t1, 0(t0)
    fence.i
patch_site:
    addi a0, zero, 1
    ebreak
""")
        run_until_ebreak(hart)
        assert hart.regs[10] == 99

    def test_store_invalidates_decode_without_fence(self):
        """A store into decoded code takes effect even without fence.i.

        Historically the decode cache was only dropped by fence.i, so
        this program executed the stale cached ``addi a0, zero, 1`` on
        its second pass; the CodeCacheRegistry now invalidates the
        cached decode when any store hits a decoded page.
        """
        hart = make_hart(""".text
_start:
    la   t0, site
    j    site            # warm the decode cache for 'site'
back:
    li   t1, 0x06300513
    sw   t1, 0(t0)
    j    site
site:
    addi a0, zero, 1
    beq  a0, a0, cont    # always taken
cont:
    addi a2, a2, 1
    li   t2, 2
    bltu a2, t2, back
    ebreak
""")
        run_until_ebreak(hart)
        # Second pass through 'site' executed the patched addi.
        assert hart.regs[10] == 99


class TestVectorEdgeCases:
    def test_fractional_lmul_limits_vlmax(self):
        hart = make_hart(""".text
_start:
    vsetvli a1, zero, e32, mf2, ta, ma
    ebreak
""", vlen_bits=256)
        run_until_ebreak(hart)
        assert hart.regs[11] == 4  # (256/32) * 1/2

    def test_vsetvl_register_form(self):
        hart = make_hart(""".text
_start:
    vsetvli a1, zero, e64, m1, ta, ma  # build a vtype in a CSR read
    csrr a2, vtype
    li   a3, 5
    vsetvl a4, a3, a2
    ebreak
""", vlen_bits=512)
        run_until_ebreak(hart)
        assert hart.regs[14] == 5

    def test_illegal_vtype_sets_vill(self):
        hart = make_hart(""".text
_start:
    li   a2, 0x1000000   # garbage vtype bits -> vill
    li   a3, 4
    vsetvl a4, a3, a2
    ebreak
""")
        run_until_ebreak(hart)
        assert hart.regs[14] == 0  # vl forced to 0
        assert hart.vtype.vill

    def test_vector_op_after_vill_traps(self):
        hart = make_hart(""".text
_start:
    li   a2, 0x1000000
    li   a3, 4
    vsetvl a4, a3, a2
    vadd.vv v1, v2, v3
""")
        run_steps(hart, 3)  # li, li, vsetvl
        with pytest.raises(VectorConfigError):
            hart.step()

    def test_vl_zero_executes_no_elements(self):
        hart = make_hart(""".text
_start:
    vsetvli a1, zero, e64, m1, ta, ma
    vmv.v.i v1, 5
    li   a2, 0
    vsetvli a1, a2, e64, m1, ta, ma
    vadd.vi v1, v1, 1      # vl = 0: no element changes
    ebreak
""", vlen_bits=256)
        run_until_ebreak(hart)
        assert hart.read_velem(1, 0, 64) == 5

    def test_sew_change_reinterprets_registers(self):
        hart = make_hart(""".text
_start:
    vsetvli a1, zero, e64, m1, ta, ma
    vmv.v.i v1, -1         # all ones
    vsetvli a1, zero, e8, m1, ta, ma
    vmv.v.i v2, 0
    vadd.vi v2, v1, 0      # copy bytes of v1
    ebreak
""", vlen_bits=256)
        run_until_ebreak(hart)
        assert all(hart.read_velem(2, i, 8) == 0xFF for i in range(32))

    def test_gather_with_8bit_indices(self):
        hart = make_hart(""".text
_start:
    li   a2, 4
    vsetvli a1, a2, e8, m1, ta, ma
    vid.v v2
    vsll.vi v2, v2, 3       # byte offsets 0, 8, 16, 24
    vsetvli a1, a2, e64, m1, ta, ma
    la   a0, data
    vluxei8.v v1, (a0), v2
    ebreak
.data
.align 3
data: .dword 11, 22, 33, 44
""", vlen_bits=256)
        run_until_ebreak(hart)
        assert [hart.read_velem(1, i, 64) for i in range(4)] == \
            [11, 22, 33, 44]

    def test_negative_stride(self):
        hart = make_hart(""".text
_start:
    li   a2, 4
    vsetvli a1, a2, e64, m1, ta, ma
    la   a0, data
    addi a0, a0, 24         # &data[3]
    li   a3, -8
    vlse64.v v1, (a0), a3   # reversed load
    ebreak
.data
.align 3
data: .dword 1, 2, 3, 4
""", vlen_bits=256)
        run_until_ebreak(hart)
        assert [hart.read_velem(1, i, 64) for i in range(4)] == \
            [4, 3, 2, 1]


class TestMulticoreMemory:
    def test_amoadd_contention(self):
        """Two harts incrementing a shared counter interleaved one
        instruction at a time never lose an update."""
        source = """.text
_start:
    la   t0, counter
    li   t1, 50
loop:
    li   t2, 1
    amoadd.d zero, t2, (t0)
    addi t1, t1, -1
    bnez t1, loop
done:
    ebreak
.data
.align 3
counter: .dword 0
"""
        from repro.assembler import assemble
        from repro.soc.memory import SparseMemory
        program = assemble(source)
        memory = SparseMemory()
        program.load_into(memory)
        harts = [Hart(i, memory, reset_pc=program.entry)
                 for i in range(2)]
        finished = [False, False]
        from repro.spike.hart import Breakpoint
        while not all(finished):
            for hart in harts:
                if finished[hart.hart_id]:
                    continue
                try:
                    hart.step()
                except Breakpoint:
                    finished[hart.hart_id] = True
        assert memory.load_int(program.symbols["counter"], 8) == 100

    def test_lr_sc_interference(self):
        """A store by another hart to the reserved address breaks the
        reservation?  (Our model only tracks the address per hart; an
        interleaved foreign store does NOT break it — documented
        simplification, matching single-reservation Spike behaviour
        loosely.)"""
        source = """.text
_start:
    la   t0, cell
    lr.d t1, (t0)
    addi t1, t1, 1
    sc.d a0, t1, (t0)
    ebreak
.data
.align 3
cell: .dword 5
"""
        from repro.assembler import assemble
        from repro.soc.memory import SparseMemory
        program = assemble(source)
        memory = SparseMemory()
        program.load_into(memory)
        hart = Hart(0, memory, reset_pc=program.entry)
        run_until_ebreak(hart)
        assert hart.regs[10] == 0
        assert memory.load_int(program.symbols["cell"], 8) == 6


class TestRegisterFileInvariants:
    def test_all_registers_stay_64bit(self):
        hart = make_hart(""".text
_start:
    li a0, -1
    slli a1, a0, 1
    mul  a2, a0, a0
    ebreak
""")
        run_until_ebreak(hart)
        assert all(0 <= value <= MASK64 for value in hart.regs)

    def test_write_reg_masks(self):
        hart = make_hart(".text\n_start:\nebreak\n")
        hart.write_reg(5, 1 << 70)
        assert hart.regs[5] == 0
        hart.write_reg(5, -1)
        assert hart.regs[5] == MASK64
