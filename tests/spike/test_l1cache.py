"""Tests for the L1 tag cache (hits, misses, LRU, write-back state)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spike.l1cache import L1Cache


def small_cache(**kwargs):
    defaults = dict(size_bytes=512, associativity=2, line_bytes=64)
    defaults.update(kwargs)
    return L1Cache(**defaults)  # 4 sets x 2 ways


class TestGeometry:
    def test_valid_geometry(self):
        cache = L1Cache(32 * 1024, 8, 64)
        assert cache.num_sets == 64

    def test_bad_line_size(self):
        with pytest.raises(ValueError):
            L1Cache(1024, 2, 48)

    def test_size_not_multiple(self):
        with pytest.raises(ValueError):
            L1Cache(1000, 2, 64)

    def test_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            L1Cache(64 * 3, 1, 64)

    def test_line_address(self):
        cache = small_cache()
        assert cache.line_address(0x12345) == 0x12340


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x1000, False).hit
        assert cache.access(0x1000, False).hit

    def test_same_line_different_offsets_hit(self):
        cache = small_cache()
        cache.access(0x1000, False)
        assert cache.access(0x103F, False).hit

    def test_adjacent_lines_are_distinct(self):
        cache = small_cache()
        cache.access(0x1000, False)
        assert not cache.access(0x1040, False).hit

    def test_stats_counting(self):
        cache = small_cache()
        cache.access(0x1000, False)
        cache.access(0x1000, False)
        cache.access(0x1000, True)
        assert cache.stats.reads == 2 and cache.stats.writes == 1
        assert cache.stats.read_misses == 1
        assert cache.stats.miss_rate == pytest.approx(1 / 3)


class TestLru:
    def test_eviction_order_is_lru(self):
        cache = small_cache()  # 2-way; lines mapping to set 0 every 256B
        a, b, c = 0x0000, 0x0100, 0x0200
        cache.access(a, False)
        cache.access(b, False)
        cache.access(a, False)        # touch a -> b is LRU
        cache.access(c, False)        # evicts b
        assert cache.access(a, False).hit
        assert not cache.access(b, False).hit

    def test_write_refreshes_lru(self):
        cache = small_cache()
        a, b, c = 0x0000, 0x0100, 0x0200
        cache.access(a, False)
        cache.access(b, False)
        cache.access(a, True)
        cache.access(c, False)
        assert cache.access(a, False).hit


class TestWriteback:
    def test_clean_eviction_no_writeback(self):
        cache = small_cache()
        cache.access(0x0000, False)
        cache.access(0x0100, False)
        result = cache.access(0x0200, False)
        assert result.writeback_address is None

    def test_dirty_eviction_writes_back(self):
        cache = small_cache()
        cache.access(0x0000, True)       # dirty
        cache.access(0x0100, False)
        result = cache.access(0x0200, False)
        assert result.writeback_address == 0x0000
        assert cache.stats.writebacks == 1

    def test_read_then_write_marks_dirty(self):
        cache = small_cache()
        cache.access(0x0000, False)
        cache.access(0x0000, True)       # now dirty via hit
        cache.access(0x0100, False)
        result = cache.access(0x0200, False)
        assert result.writeback_address == 0x0000

    def test_flush_returns_dirty_lines(self):
        cache = small_cache()
        cache.access(0x0000, True)
        cache.access(0x1000, False)
        dirty = cache.flush()
        assert dirty == [0x0000]
        assert cache.resident_lines() == 0

    def test_invalidate_all(self):
        cache = small_cache()
        cache.access(0x0000, True)
        cache.invalidate_all()
        assert not cache.probe(0x0000)


class TestProbe:
    def test_probe_no_side_effects(self):
        cache = small_cache()
        cache.access(0x0000, False)
        cache.access(0x0100, False)
        # Probing a does NOT refresh LRU.
        assert cache.probe(0x0000)
        cache.access(0x0200, False)  # evicts a (still LRU)
        assert not cache.probe(0x0000)


@settings(max_examples=30)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=63),
                          st.booleans()),
                min_size=1, max_size=200))
def test_capacity_invariant(accesses):
    """The cache never holds more lines than its capacity, and per-set
    occupancy never exceeds associativity."""
    cache = L1Cache(size_bytes=1024, associativity=4, line_bytes=64)
    for line_index, is_write in accesses:
        cache.access(line_index * 64, is_write)
        assert cache.resident_lines() <= 16
        for ways in cache._sets:
            assert len(ways) <= 4


@settings(max_examples=30)
@given(st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                max_size=100))
def test_working_set_within_assoc_always_hits_after_warmup(lines):
    """Lines all in one set, count <= associativity: no conflict misses."""
    cache = L1Cache(size_bytes=4096, associativity=8, line_bytes=64)
    distinct = sorted(set(lines))
    set_count = cache.num_sets
    addresses = [line * 64 * set_count for line in distinct]  # same set
    for address in addresses:
        cache.access(address, False)
    for address in addresses:
        assert cache.access(address, False).hit
