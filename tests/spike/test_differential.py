"""Differential testing of scalar execution.

Hypothesis generates random straight-line programs over a small register
window; the expected architectural state is computed by an *independent*
evaluator built on numpy's fixed-width integer semantics (a different
code path from the hart's executors, which use arbitrary-precision
Python ints).  Any divergence flags a semantics bug in one of the two.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import make_hart, run_until_ebreak

# Registers the generated programs operate on (avoid sp/ra/zero).
_REGS = ["a0", "a1", "a2", "a3", "a4", "a5"]
_REG_INDEX = {"a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14,
              "a5": 15}

_BINARY_OPS = ["add", "sub", "mul", "and", "or", "xor", "sll", "srl",
               "sra", "slt", "sltu", "addw", "subw", "mulw"]
_IMM_OPS = ["addi", "andi", "ori", "xori", "slti", "sltiu", "addiw"]


def _np_binary(op: str, a: np.uint64, b: np.uint64) -> np.uint64:
    """Reference semantics via numpy fixed-width arithmetic."""
    with np.errstate(over="ignore"):
        signed_a = np.uint64(a).astype(np.int64)
        signed_b = np.uint64(b).astype(np.int64)
        shamt = int(b & np.uint64(63))
        wshamt = int(b & np.uint64(31))
        if op == "add":
            return np.uint64(a + b)
        if op == "sub":
            return np.uint64(a - b)
        if op == "mul":
            return np.uint64(a * b)
        if op == "and":
            return np.uint64(a & b)
        if op == "or":
            return np.uint64(a | b)
        if op == "xor":
            return np.uint64(a ^ b)
        if op == "sll":
            return np.uint64(a << np.uint64(shamt))
        if op == "srl":
            return np.uint64(a >> np.uint64(shamt))
        if op == "sra":
            return np.uint64(signed_a >> np.int64(shamt))
        if op == "slt":
            return np.uint64(1 if signed_a < signed_b else 0)
        if op == "sltu":
            return np.uint64(1 if a < b else 0)
        if op in ("addw", "subw", "mulw"):
            a32 = np.uint64(a).astype(np.uint32)
            b32 = np.uint64(b).astype(np.uint32)
            if op == "addw":
                r32 = np.uint32(a32 + b32)
            elif op == "subw":
                r32 = np.uint32(a32 - b32)
            else:
                r32 = np.uint32(a32 * b32)
            return np.uint64(r32.astype(np.int32).astype(np.int64)
                             .astype(np.uint64))
    raise AssertionError(op)


def _np_immediate(op: str, a: np.uint64, imm: int) -> np.uint64:
    signed_a = np.uint64(a).astype(np.int64)
    uimm = np.uint64(np.int64(imm).astype(np.uint64))
    with np.errstate(over="ignore"):
        if op == "addi":
            return np.uint64(a + uimm)
        if op == "andi":
            return np.uint64(a & uimm)
        if op == "ori":
            return np.uint64(a | uimm)
        if op == "xori":
            return np.uint64(a ^ uimm)
        if op == "slti":
            return np.uint64(1 if signed_a < np.int64(imm) else 0)
        if op == "sltiu":
            return np.uint64(1 if a < uimm else 0)
        if op == "addiw":
            r32 = np.uint32(np.uint64(a).astype(np.uint32)
                            + np.int64(imm).astype(np.uint64)
                            .astype(np.uint32))
            return np.uint64(r32.astype(np.int32).astype(np.int64)
                             .astype(np.uint64))
    raise AssertionError(op)


_instruction = st.one_of(
    st.tuples(st.just("bin"), st.sampled_from(_BINARY_OPS),
              st.sampled_from(_REGS), st.sampled_from(_REGS),
              st.sampled_from(_REGS)),
    st.tuples(st.just("imm"), st.sampled_from(_IMM_OPS),
              st.sampled_from(_REGS), st.sampled_from(_REGS),
              st.integers(min_value=-2048, max_value=2047)),
)


@settings(max_examples=120, deadline=None)
@given(seeds=st.lists(st.integers(min_value=0,
                                  max_value=(1 << 64) - 1),
                      min_size=len(_REGS), max_size=len(_REGS)),
       program=st.lists(_instruction, min_size=1, max_size=25))
def test_random_straight_line_programs(seeds, program):
    # Independent reference state.
    state = {reg: np.uint64(value)
             for reg, value in zip(_REGS, seeds)}
    lines = []
    for reg, value in zip(_REGS, seeds):
        lines.append(f"    li {reg}, {int(value)}")
    for entry in program:
        if entry[0] == "bin":
            _tag, op, rd, rs1, rs2 = entry
            lines.append(f"    {op} {rd}, {rs1}, {rs2}")
            state[rd] = _np_binary(op, state[rs1], state[rs2])
        else:
            _tag, op, rd, rs1, imm = entry
            lines.append(f"    {op} {rd}, {rs1}, {imm}")
            state[rd] = _np_immediate(op, state[rs1], imm)
    source = ".text\n_start:\n" + "\n".join(lines) + "\n    ebreak\n"
    hart = make_hart(source)
    run_until_ebreak(hart)
    for reg, expected in state.items():
        actual = hart.regs[_REG_INDEX[reg]]
        assert actual == int(expected), (
            f"{reg}: hart={actual:#x} reference={int(expected):#x}\n"
            f"program:\n{source}")
