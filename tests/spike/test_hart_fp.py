"""Functional tests of scalar floating-point execution."""

import math
import struct

import pytest

from tests.conftest import make_hart, run_until_ebreak


def run_body(body: str, doubles: dict[str, float] | None = None):
    """Run a body with optional named .double data cells."""
    data_lines = []
    for name, value in (doubles or {}).items():
        data_lines.append(f"{name}: .double {value!r}")
    data = ".data\n.align 3\nresult: .zero 64\n" + "\n".join(data_lines)
    hart = make_hart(f".text\n_start:\n{body}\n    ebreak\n{data}\n")
    run_until_ebreak(hart)
    return hart


class TestLoadsStores:
    def test_fld(self):
        hart = run_body("la a0, x\nfld fa0, 0(a0)", doubles={"x": 2.5})
        assert hart.fregs[10] == 2.5

    def test_fsd_roundtrip(self):
        hart = run_body("""
    la a0, x
    fld fa0, 0(a0)
    la a1, result
    fsd fa0, 0(a1)
    fld fa1, 0(a1)
""", doubles={"x": -1.25})
        assert hart.fregs[11] == -1.25

    def test_flw_fsw(self):
        hart = run_body("""
    la a0, result
    li a1, 0x40490FDB
    sw a1, 0(a0)
    flw fa0, 0(a0)
    fsw fa0, 8(a0)
    lwu a2, 8(a0)
""")
        assert hart.fregs[10] == pytest.approx(math.pi, rel=1e-6)
        assert hart.regs[12] == 0x40490FDB


class TestArithmetic:
    def test_basic_ops(self):
        hart = run_body("""
    la a0, x
    fld fa0, 0(a0)
    la a0, y
    fld fa1, 0(a0)
    fadd.d fa2, fa0, fa1
    fsub.d fa3, fa0, fa1
    fmul.d fa4, fa0, fa1
    fdiv.d fa5, fa0, fa1
""", doubles={"x": 6.0, "y": 1.5})
        assert hart.fregs[12] == 7.5
        assert hart.fregs[13] == 4.5
        assert hart.fregs[14] == 9.0
        assert hart.fregs[15] == 4.0

    def test_fmadd(self):
        hart = run_body("""
    la a0, x
    fld fa0, 0(a0)
    la a0, y
    fld fa1, 0(a0)
    la a0, z
    fld fa2, 0(a0)
    fmadd.d fa3, fa0, fa1, fa2
    fmsub.d fa4, fa0, fa1, fa2
    fnmadd.d fa5, fa0, fa1, fa2
    fnmsub.d fa6, fa0, fa1, fa2
""", doubles={"x": 2.0, "y": 3.0, "z": 1.0})
        assert hart.fregs[13] == 7.0
        assert hart.fregs[14] == 5.0
        assert hart.fregs[15] == -7.0
        assert hart.fregs[16] == -5.0

    def test_fsqrt(self):
        hart = run_body("la a0, x\nfld fa0, 0(a0)\nfsqrt.d fa1, fa0",
                        doubles={"x": 9.0})
        assert hart.fregs[11] == 3.0

    def test_fsqrt_negative_is_nan(self):
        hart = run_body("la a0, x\nfld fa0, 0(a0)\nfsqrt.d fa1, fa0",
                        doubles={"x": -1.0})
        assert math.isnan(hart.fregs[11])

    def test_fdiv_by_zero_gives_inf(self):
        hart = run_body("""
    la a0, x
    fld fa0, 0(a0)
    fmv.d.x fa1, zero
    fdiv.d fa2, fa0, fa1
""", doubles={"x": 1.0})
        assert hart.fregs[12] == math.inf

    def test_fmin_fmax(self):
        hart = run_body("""
    la a0, x
    fld fa0, 0(a0)
    la a0, y
    fld fa1, 0(a0)
    fmin.d fa2, fa0, fa1
    fmax.d fa3, fa0, fa1
""", doubles={"x": -3.0, "y": 2.0})
        assert hart.fregs[12] == -3.0
        assert hart.fregs[13] == 2.0

    def test_sign_injection(self):
        hart = run_body("""
    la a0, x
    fld fa0, 0(a0)
    fneg.d fa1, fa0
    fabs.d fa2, fa1
    fmv.d  fa3, fa1
""", doubles={"x": 4.0})
        assert hart.fregs[11] == -4.0
        assert hart.fregs[12] == 4.0
        assert hart.fregs[13] == -4.0


class TestCompareAndClassify:
    def test_compares(self):
        hart = run_body("""
    la a0, x
    fld fa0, 0(a0)
    la a0, y
    fld fa1, 0(a0)
    feq.d a1, fa0, fa1
    flt.d a2, fa0, fa1
    fle.d a3, fa0, fa0
""", doubles={"x": 1.0, "y": 2.0})
        assert hart.regs[11] == 0
        assert hart.regs[12] == 1
        assert hart.regs[13] == 1

    def test_nan_compares_false(self):
        hart = run_body("""
    la a0, x
    fld fa0, 0(a0)
    fsqrt.d fa1, fa0      # NaN
    feq.d a1, fa1, fa1
    flt.d a2, fa1, fa1
""", doubles={"x": -1.0})
        assert hart.regs[11] == 0 and hart.regs[12] == 0

    def test_fclass(self):
        hart = run_body("""
    la a0, x
    fld fa0, 0(a0)
    fclass.d a1, fa0
    fneg.d fa1, fa0
    fclass.d a2, fa1
""", doubles={"x": 2.0})
        assert hart.regs[11] == 1 << 6  # positive normal
        assert hart.regs[12] == 1 << 1  # negative normal


class TestConversionsAndMoves:
    def test_int_to_double(self):
        hart = run_body("li a0, -7\nfcvt.d.l fa0, a0")
        assert hart.fregs[10] == -7.0

    def test_double_to_int_truncates(self):
        hart = run_body("la a0, x\nfld fa0, 0(a0)\nfcvt.l.d a1, fa0",
                        doubles={"x": -2.75})
        assert hart.regs[11] == (-2) & 0xFFFF_FFFF_FFFF_FFFF

    def test_unsigned_conversion_clamps(self):
        hart = run_body("la a0, x\nfld fa0, 0(a0)\nfcvt.lu.d a1, fa0",
                        doubles={"x": -5.0})
        assert hart.regs[11] == 0

    def test_w_conversion_saturates(self):
        hart = run_body("la a0, x\nfld fa0, 0(a0)\nfcvt.w.d a1, fa0",
                        doubles={"x": 1e300})
        assert hart.regs[11] == 0x7FFF_FFFF

    def test_fmv_bitcast(self):
        hart = run_body("la a0, x\nfld fa0, 0(a0)\nfmv.x.d a1, fa0\n"
                        "fmv.d.x fa1, a1", doubles={"x": 1.5})
        assert hart.regs[11] == struct.unpack("<Q",
                                              struct.pack("<d", 1.5))[0]
        assert hart.fregs[11] == 1.5

    def test_single_double_conversion(self):
        hart = run_body("""
    la a0, x
    fld fa0, 0(a0)
    fcvt.s.d fa1, fa0
    fcvt.d.s fa2, fa1
""", doubles={"x": 0.1})
        # 0.1 is not exactly representable in binary32.
        assert hart.fregs[12] == pytest.approx(0.1, rel=1e-7)
        assert hart.fregs[12] != 0.1

    def test_fcvt_w_sign_extends_result(self):
        hart = run_body("la a0, x\nfld fa0, 0(a0)\nfcvt.w.d a1, fa0",
                        doubles={"x": -1.0})
        assert hart.regs[11] == 0xFFFF_FFFF_FFFF_FFFF


class TestSinglePrecision:
    def test_fadd_s_rounds_to_f32(self):
        hart = run_body("""
    la a0, result
    li a1, 0x3F800001       # float32 just above 1.0
    sw a1, 0(a0)
    flw fa0, 0(a0)
    fadd.s fa1, fa0, fa0
""")
        expected = struct.unpack("<f", struct.pack("<I", 0x3F800001))[0]
        assert hart.fregs[11] == pytest.approx(2 * expected, rel=1e-7)
