"""Functional tests of the RVV-subset vector unit."""

import struct

import pytest

from repro.spike.vector import VectorConfigError
from repro.utils.bitops import to_unsigned

from tests.conftest import make_hart, run_until_ebreak

VLEN = 256  # test harts use VLEN=256 -> 4 x e64 per register


def run_body(body: str, data: str = "", vlen_bits: int = VLEN):
    source = (f".text\n_start:\n{body}\n    ebreak\n"
              f".data\n.align 3\nvresult: .zero 256\n{data}\n")
    hart = make_hart(source, vlen_bits=vlen_bits)
    run_until_ebreak(hart)
    return hart


def velems(hart, reg, count, sew=64):
    return [hart.read_velem(reg, i, sew) for i in range(count)]


def vfelems(hart, reg, count):
    return [struct.unpack("<d", bytes(hart.vregs[reg][8 * i:8 * i + 8]))[0]
            for i in range(count)]


class TestConfiguration:
    def test_vsetvli_grants_avl(self):
        hart = run_body("li a0, 3\nvsetvli a1, a0, e64, m1, ta, ma")
        assert hart.regs[11] == 3 and hart.vl == 3

    def test_vsetvli_caps_at_vlmax(self):
        hart = run_body("li a0, 100\nvsetvli a1, a0, e64, m1, ta, ma")
        assert hart.regs[11] == 4  # VLEN=256 / 64

    def test_vlmax_request_via_x0(self):
        hart = run_body("vsetvli a1, zero, e32, m1, ta, ma")
        assert hart.regs[11] == 8

    def test_lmul_expands_vlmax(self):
        hart = run_body("li a0, 100\nvsetvli a1, a0, e64, m4, ta, ma")
        assert hart.regs[11] == 16

    def test_vsetivli(self):
        hart = run_body("vsetivli a1, 2, e64, m1, ta, ma")
        assert hart.regs[11] == 2

    def test_vl_vtype_csrs(self):
        hart = run_body("""
    li a0, 3
    vsetvli a1, a0, e32, m2, ta, ma
    csrr a2, vl
    csrr a3, vtype
    csrr a4, vlenb
""")
        assert hart.regs[12] == 3
        from repro.isa.vtype import VType
        vtype = VType.decode(hart.regs[13])
        assert vtype.sew == 32 and int(vtype.lmul) == 2
        assert hart.regs[14] == VLEN // 8

    def test_vector_op_without_config_traps(self):
        hart = make_hart(".text\n_start:\nvadd.vv v1, v2, v3\n")
        with pytest.raises(VectorConfigError):
            hart.step()


class TestIntegerOps:
    def test_vid_vadd(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    vadd.vi v2, v1, 10
""")
        assert velems(hart, 2, 4) == [10, 11, 12, 13]

    def test_vadd_vx(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    li a2, 100
    vadd.vx v2, v1, a2
""")
        assert velems(hart, 2, 4) == [100, 101, 102, 103]

    def test_vmul_and_vmacc(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    vmv.v.i v2, 3
    vmul.vv v3, v1, v2        # 0 3 6 9
    vmv.v.i v4, 1
    vmacc.vv v4, v1, v2       # 1 + i*3
""")
        assert velems(hart, 3, 4) == [0, 3, 6, 9]
        assert velems(hart, 4, 4) == [1, 4, 7, 10]

    def test_vrsub_vi(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    vrsub.vi v2, v1, 3        # 3 - i
""")
        assert velems(hart, 2, 4) == [3, 2, 1, 0]

    def test_signed_ops_at_sew32(self):
        hart = run_body("""
    vsetvli a1, zero, e32, m1, ta, ma
    vid.v v1
    vrsub.vi v2, v1, 0        # -i
    li a2, -1
    vmax.vx v3, v2, zero      # max(-i, 0) = 0
    vmin.vx v4, v2, a2        # min(-i, -1)
""")
        assert velems(hart, 3, 4, sew=32) == [0, 0, 0, 0]
        expected = [to_unsigned(min(-i, -1), 32) for i in range(4)]
        assert velems(hart, 4, 4, sew=32) == expected

    def test_shifts(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    vsll.vi v2, v1, 4
""")
        assert velems(hart, 2, 4) == [0, 16, 32, 48]

    def test_vdiv_vrem(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    vadd.vi v1, v1, 7         # 7 8 9 10
    li a2, 3
    vdiv.vx v2, v1, a2
    vrem.vx v3, v1, a2
""")
        assert velems(hart, 2, 4) == [2, 2, 3, 3]
        assert velems(hart, 3, 4) == [1, 2, 0, 1]

    def test_reduction_sum(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    vmv.v.i v2, 0
    vredsum.vs v3, v1, v2
    vmv.x.s a0, v3
""")
        assert hart.regs[10] == 0 + 1 + 2 + 3

    def test_reduction_max(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    vmv.v.i v2, 0
    vredmax.vs v3, v1, v2
    vmv.x.s a0, v3
""")
        assert hart.regs[10] == 3


class TestMasks:
    def test_compare_writes_mask_bits(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    vmsgt.vi v0, v1, 1        # mask = i > 1
    vmv.v.i v2, 0
    li a2, 100
    vadd.vx v2, v1, a2, v0.t
""")
        assert velems(hart, 2, 4) == [0, 0, 102, 103]

    def test_vmerge(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    vmsgt.vi v0, v1, 1
    vmv.v.i v2, 7
    li a2, 55
    vmerge.vxm v3, v2, a2, v0
""")
        assert velems(hart, 3, 4) == [7, 7, 55, 55]

    def test_viota(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    vmsgt.vi v2, v1, 0        # 0 1 1 1
    viota.m v3, v2
""")
        assert velems(hart, 3, 4) == [0, 0, 1, 2]

    def test_masked_vid(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    vmsgt.vi v0, v1, 1
    vmv.v.i v2, -1
    vid.v v2, v0.t
""")
        ones = to_unsigned(-1)
        assert velems(hart, 2, 4) == [ones, ones, 2, 3]


class TestSlidesAndGather:
    def test_slidedown(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    vslidedown.vi v2, v1, 1
""")
        assert velems(hart, 2, 4) == [1, 2, 3, 0]

    def test_slideup(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    vmv.v.i v2, 9
    vslideup.vi v2, v1, 2
""")
        assert velems(hart, 2, 4) == [9, 9, 0, 1]

    def test_vrgather(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    vadd.vi v1, v1, 10        # 10 11 12 13
    vrsub.vi v2, v1, 13       # reverse indices 3 2 1 0 ... careful
    vid.v v2
    vrsub.vi v2, v2, 3        # 3 2 1 0
    vrgather.vv v3, v1, v2
""")
        assert velems(hart, 3, 4) == [13, 12, 11, 10]

    def test_vrgather_out_of_range_zero(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    vadd.vi v1, v1, 5
    li a2, 99
    vrgather.vx v3, v1, a2
""")
        assert velems(hart, 3, 4) == [0, 0, 0, 0]


class TestMemoryOps:
    DATA = """
vin:
    .dword 10, 20, 30, 40, 50, 60, 70, 80
"""

    def test_unit_stride_load_store(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    la a0, vin
    vle64.v v1, (a0)
    vadd.vi v1, v1, 1
    la a2, vresult
    vse64.v v1, (a2)
    ld a3, 0(a2)
    ld a4, 24(a2)
""", data=self.DATA)
        assert hart.regs[13] == 11 and hart.regs[14] == 41

    def test_strided_load(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    la a0, vin
    li a2, 16
    vlse64.v v1, (a0), a2
""", data=self.DATA)
        assert velems(hart, 1, 4) == [10, 30, 50, 70]

    def test_indexed_gather(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    la a0, vin
    vid.v v2
    vsll.vi v2, v2, 4         # byte offsets 0, 16, 32, 48
    vluxei64.v v1, (a0), v2
""", data=self.DATA)
        assert velems(hart, 1, 4) == [10, 30, 50, 70]

    def test_indexed_scatter(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    vadd.vi v1, v1, 1         # 1 2 3 4
    vid.v v2
    vsll.vi v2, v2, 4         # scatter to every other dword
    la a0, vresult
    vsuxei64.v v1, (a0), v2
    ld a2, 0(a0)
    ld a3, 16(a0)
    ld a4, 8(a0)
""", data=self.DATA)
        assert hart.regs[12] == 1 and hart.regs[13] == 2
        assert hart.regs[14] == 0  # untouched gap

    def test_masked_load_leaves_inactive(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    vid.v v1
    vmsgt.vi v0, v1, 1
    vmv.v.i v2, -1
    la a0, vin
    vle64.v v2, (a0), v0.t
""", data=self.DATA)
        ones = to_unsigned(-1)
        assert velems(hart, 2, 4) == [ones, ones, 30, 40]

    def test_vl_limits_elements(self):
        hart = run_body("""
    li a2, 2
    vsetvli a1, a2, e64, m1, ta, ma
    la a0, vin
    vle64.v v1, (a0)
""", data=self.DATA)
        assert velems(hart, 1, 2) == [10, 20]
        assert hart.read_velem(1, 2, 64) == 0  # tail untouched

    def test_element_accesses_recorded(self):
        hart = make_hart(""".text
_start:
    vsetvli a1, zero, e64, m1, ta, ma
    la a0, vin
    vle64.v v1, (a0)
    ebreak
.data
.align 3
vin: .dword 1, 2, 3, 4
""", vlen_bits=VLEN)
        # vsetvli + la (2 real instructions) + vle64 = 4 steps.
        for _ in range(4):
            hart.step()
        assert len(hart.accesses) == 4  # one recorded access per element
        assert all(access.size == 8 and not access.is_write
                   for access in hart.accesses)


class TestFloatOps:
    DATA = """
fin:
    .double 1.0, 2.0, 3.0, 4.0
fscale:
    .double 0.5
"""

    def test_vfadd_vfmul(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    la a0, fin
    vle64.v v1, (a0)
    vfadd.vv v2, v1, v1
    vfmul.vv v3, v1, v1
""", data=self.DATA)
        assert vfelems(hart, 2, 4) == [2.0, 4.0, 6.0, 8.0]
        assert vfelems(hart, 3, 4) == [1.0, 4.0, 9.0, 16.0]

    def test_vfmacc_vf(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    la a0, fin
    vle64.v v1, (a0)
    la a2, fscale
    fld fa0, 0(a2)
    vmv.v.i v2, 0
    vfmacc.vf v2, fa0, v1      # 0 + 0.5 * v1
""", data=self.DATA)
        assert vfelems(hart, 2, 4) == [0.5, 1.0, 1.5, 2.0]

    def test_vfredosum(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    la a0, fin
    vle64.v v1, (a0)
    fmv.d.x fa0, zero
    vfmv.s.f v4, fa0
    vfredosum.vs v5, v1, v4
    vfmv.f.s fa1, v5
""", data=self.DATA)
        assert hart.fregs[11] == 10.0

    def test_vfmv_v_f(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    la a2, fscale
    fld fa0, 0(a2)
    vfmv.v.f v1, fa0
""", data=self.DATA)
        assert vfelems(hart, 1, 4) == [0.5] * 4

    def test_vmflt_mask(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m1, ta, ma
    la a0, fin
    vle64.v v1, (a0)
    la a2, fscale
    fld fa0, 0(a2)
    vfmv.v.f v2, fa0
    vfadd.vf v2, v2, fa0      # 1.0 broadcast... v2 = 1.0
    vmflt.vv v0, v1, v2       # fin < 1.0 -> none
    vmfle.vv v3, v1, v2       # fin <= 1.0 -> first only
""", data=self.DATA)
        assert hart.read_vmask_bit(0) == 0
        assert (hart.vregs[3][0] & 0xF) == 0b0001

    def test_fp_op_at_sew8_traps(self):
        hart = make_hart(""".text
_start:
    vsetvli a1, zero, e8, m1, ta, ma
    vfadd.vv v1, v2, v3
""")
        hart.step()
        with pytest.raises(VectorConfigError):
            hart.step()


class TestLmulGroups:
    def test_lmul2_spans_registers(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m2, ta, ma   # vl = 8 across v-pairs
    vid.v v2
    vadd.vi v4, v2, 1
""")
        # Group v2..v3 holds 0..7; group v4..v5 holds 1..8.
        values = [hart.read_velem(2, i, 64) for i in range(8)]
        assert values == list(range(8))
        values4 = [hart.read_velem(4, i, 64) for i in range(8)]
        assert values4 == [v + 1 for v in range(8)]

    def test_lmul2_memory_roundtrip(self):
        hart = run_body("""
    vsetvli a1, zero, e64, m2, ta, ma
    vid.v v2
    la a0, vresult
    vse64.v v2, (a0)
    ld a2, 56(a0)
""")
        assert hart.regs[12] == 7
