"""Functional tests of scalar integer execution."""

import pytest

from repro.spike.hart import (
    Breakpoint,
    EnvironmentCall,
    IllegalInstructionTrap,
)
from repro.utils.bitops import MASK64, to_unsigned

from tests.conftest import make_hart, run_steps, run_until_ebreak


def run_body(body: str, steps: int | None = None, **hart_kwargs):
    """Assemble a .text body, run to ebreak (or `steps`), return hart."""
    hart = make_hart(f".text\n_start:\n{body}\n    ebreak\n", **hart_kwargs)
    if steps is None:
        run_until_ebreak(hart)
    else:
        run_steps(hart, steps)
    return hart


class TestArithmetic:
    def test_addi(self):
        hart = run_body("addi a0, zero, 42")
        assert hart.regs[10] == 42

    def test_addi_negative_wraps(self):
        hart = run_body("addi a0, zero, -1")
        assert hart.regs[10] == MASK64

    def test_x0_writes_discarded(self):
        hart = run_body("addi zero, zero, 5")
        assert hart.regs[0] == 0

    def test_add_overflow_wraps(self):
        hart = run_body("""
    li a1, 0x7FFFFFFFFFFFFFFF
    addi a2, zero, 1
    add a0, a1, a2
""")
        assert hart.regs[10] == 1 << 63

    def test_sub(self):
        hart = run_body("addi a1, zero, 5\naddi a2, zero, 7\n"
                        "sub a0, a1, a2")
        assert hart.regs[10] == to_unsigned(-2)

    def test_slt_signed(self):
        hart = run_body("addi a1, zero, -1\naddi a2, zero, 1\n"
                        "slt a0, a1, a2")
        assert hart.regs[10] == 1

    def test_sltu_unsigned(self):
        hart = run_body("addi a1, zero, -1\naddi a2, zero, 1\n"
                        "sltu a0, a1, a2")
        assert hart.regs[10] == 0  # 0xFFF..F > 1 unsigned

    def test_logic_ops(self):
        hart = run_body("""
    li a1, 0xF0F0
    li a2, 0x0FF0
    and a3, a1, a2
    or  a4, a1, a2
    xor a5, a1, a2
""")
        assert hart.regs[13] == 0x00F0
        assert hart.regs[14] == 0xFFF0
        assert hart.regs[15] == 0xFF00

    def test_shifts(self):
        hart = run_body("""
    li a1, -8
    srai a2, a1, 1
    srli a3, a1, 60
    slli a4, a1, 1
""")
        assert hart.regs[12] == to_unsigned(-4)
        assert hart.regs[13] == 0xF
        assert hart.regs[14] == to_unsigned(-16)

    def test_shift_by_register_masks_to_6_bits(self):
        hart = run_body("li a1, 1\nli a2, 65\nsll a0, a1, a2")
        assert hart.regs[10] == 2  # 65 & 63 == 1

    def test_addiw_sign_extends(self):
        hart = run_body("li a1, 0x7FFFFFFF\naddiw a0, a1, 1")
        assert hart.regs[10] == to_unsigned(-(1 << 31))

    def test_subw(self):
        hart = run_body("li a1, 0\nli a2, 1\nsubw a0, a1, a2")
        assert hart.regs[10] == MASK64

    def test_sraw(self):
        hart = run_body("li a1, 0x80000000\nli a2, 4\nsraw a0, a1, a2")
        assert hart.regs[10] == to_unsigned(-(1 << 27))


class TestMulDiv:
    def test_mul(self):
        hart = run_body("li a1, 7\nli a2, -3\nmul a0, a1, a2")
        assert hart.regs[10] == to_unsigned(-21)

    def test_mulh(self):
        hart = run_body("li a1, -1\nli a2, -1\nmulh a0, a1, a2")
        assert hart.regs[10] == 0  # (-1 * -1) >> 64

    def test_mulhu(self):
        hart = run_body("li a1, -1\nli a2, -1\nmulhu a0, a1, a2")
        assert hart.regs[10] == MASK64 - 1

    def test_div(self):
        hart = run_body("li a1, -7\nli a2, 2\ndiv a0, a1, a2")
        assert hart.regs[10] == to_unsigned(-3)  # trunc toward zero

    def test_div_by_zero(self):
        hart = run_body("li a1, 5\ndiv a0, a1, zero")
        assert hart.regs[10] == MASK64

    def test_div_overflow(self):
        hart = run_body("li a1, 1\nslli a1, a1, 63\nli a2, -1\n"
                        "div a0, a1, a2")
        assert hart.regs[10] == 1 << 63

    def test_rem(self):
        hart = run_body("li a1, -7\nli a2, 2\nrem a0, a1, a2")
        assert hart.regs[10] == to_unsigned(-1)

    def test_rem_by_zero_returns_dividend(self):
        hart = run_body("li a1, 42\nrem a0, a1, zero")
        assert hart.regs[10] == 42

    def test_divu(self):
        hart = run_body("li a1, -1\nli a2, 2\ndivu a0, a1, a2")
        assert hart.regs[10] == MASK64 // 2

    def test_mulw(self):
        hart = run_body("li a1, 0x10000\nli a2, 0x10000\nmulw a0, a1, a2")
        assert hart.regs[10] == 0  # low 32 bits of 2^32

    def test_divw(self):
        hart = run_body("li a1, -8\nli a2, 2\ndivw a0, a1, a2")
        assert hart.regs[10] == to_unsigned(-4)


class TestMemoryOps:
    def test_store_load_all_widths(self):
        hart = run_body("""
    la  a1, buffer
    li  a2, 0x1122334455667788
    sd  a2, 0(a1)
    ld  a3, 0(a1)
    lw  a4, 0(a1)
    lwu a5, 4(a1)
    lh  a6, 0(a1)
    lhu a7, 0(a1)
    lb  t0, 7(a1)
    lbu t1, 7(a1)
.data
buffer: .zero 16
.text
""")
        assert hart.regs[13] == 0x1122334455667788
        assert hart.regs[14] == 0x55667788
        assert hart.regs[15] == 0x11223344
        assert hart.regs[16] == 0x7788
        assert hart.regs[17] == 0x7788
        assert hart.regs[5] == 0x11
        assert hart.regs[6] == 0x11

    def test_signed_byte_load(self):
        hart = run_body("""
    la a1, buffer
    li a2, 0x80
    sb a2, 0(a1)
    lb a0, 0(a1)
.data
buffer: .zero 8
.text
""")
        assert hart.regs[10] == to_unsigned(-128)

    def test_accesses_recorded(self):
        hart = make_hart(""".text
_start:
    la a1, buffer
    ld a0, 0(a1)
    ebreak
.data
buffer: .dword 7
""")
        run_steps(hart, 3)  # la = 2 instructions, then the load
        assert len(hart.accesses) == 1
        access = hart.accesses[0]
        assert access.size == 8 and not access.is_write


class TestControlFlow:
    def test_loop_sums(self):
        hart = run_body("""
    li a0, 0
    li a1, 10
loop:
    add a0, a0, a1
    addi a1, a1, -1
    bnez a1, loop
""")
        assert hart.regs[10] == 55

    def test_jal_links(self):
        hart = make_hart(""".text
_start:
    jal ra, target
dead:
    nop
target:
    ebreak
""")
        run_until_ebreak(hart)
        assert hart.regs[1] == 0x8000_0004

    def test_jalr_returns(self):
        hart = run_body("""
    call fn
    j done
fn:
    li a0, 99
    ret
done:
    nop
""")
        assert hart.regs[10] == 99

    def test_branch_taken_untaken(self):
        hart = run_body("""
    li a0, 0
    li a1, 5
    beq a1, zero, skip
    addi a0, a0, 1
skip:
    bne a1, zero, skip2
    addi a0, a0, 100
skip2:
    nop
""")
        assert hart.regs[10] == 1

    def test_bltu_vs_blt(self):
        hart = run_body("""
    li a0, 0
    li a1, -1
    li a2, 1
    bltu a1, a2, no1      # unsigned: 0xFF..F > 1, not taken
    addi a0, a0, 1
no1:
    blt a1, a2, yes       # signed: -1 < 1, taken
    addi a0, a0, 100
yes:
    nop
""")
        assert hart.regs[10] == 1


class TestCsr:
    def test_mhartid(self):
        hart = run_body("csrr a0, mhartid", hart_id=3)
        assert hart.regs[10] == 3

    def test_csr_write_read(self):
        hart = run_body("li a1, 0x1234\ncsrw mscratch, a1\n"
                        "csrr a0, mscratch")
        assert hart.regs[10] == 0x1234

    def test_csrrs_sets_bits(self):
        hart = run_body("""
    li a1, 0x0F
    csrw mscratch, a1
    li a2, 0xF0
    csrrs a0, mscratch, a2
    csrr a3, mscratch
""")
        assert hart.regs[10] == 0x0F  # old value returned
        assert hart.regs[13] == 0xFF

    def test_csrrc_clears_bits(self):
        hart = run_body("""
    li a1, 0xFF
    csrw mscratch, a1
    li a2, 0x0F
    csrrc a0, mscratch, a2
    csrr a3, mscratch
""")
        assert hart.regs[13] == 0xF0

    def test_csrrwi(self):
        hart = run_body("csrrwi a0, mscratch, 21\ncsrr a1, mscratch")
        assert hart.regs[11] == 21

    def test_instret_counts(self):
        hart = run_body("nop\nnop\nrdinstret a0")
        assert hart.regs[10] == 2

    def test_read_only_csr_write_traps(self):
        hart = make_hart(".text\n_start:\ncsrw mhartid, a0\n")
        with pytest.raises(IllegalInstructionTrap):
            hart.step()


class TestAtomics:
    def test_amoadd(self):
        hart = run_body("""
    la a1, cell
    li a2, 5
    amoadd.d a0, a2, (a1)
    ld a3, 0(a1)
.data
cell: .dword 10
.text
""")
        assert hart.regs[10] == 10  # old value
        assert hart.regs[13] == 15

    def test_amoswap(self):
        hart = run_body("""
    la a1, cell
    li a2, 77
    amoswap.d a0, a2, (a1)
.data
cell: .dword 3
.text
""")
        assert hart.regs[10] == 3

    def test_amomax_signed(self):
        hart = run_body("""
    la a1, cell
    li a2, -5
    amomax.d a0, a2, (a1)
    ld a3, 0(a1)
.data
cell: .dword -10
.text
""")
        assert hart.regs[13] == to_unsigned(-5)

    def test_amomaxu_unsigned(self):
        hart = run_body("""
    la a1, cell
    li a2, -5
    amomaxu.d a0, a2, (a1)
    ld a3, 0(a1)
.data
cell: .dword 10
.text
""")
        assert hart.regs[13] == to_unsigned(-5)  # 0xFF..FB > 10 unsigned

    def test_lr_sc_success(self):
        hart = run_body("""
    la a1, cell
    lr.d a2, (a1)
    addi a2, a2, 1
    sc.d a0, a2, (a1)
    ld a3, 0(a1)
.data
cell: .dword 41
.text
""")
        assert hart.regs[10] == 0  # success
        assert hart.regs[13] == 42

    def test_sc_without_reservation_fails(self):
        hart = run_body("""
    la a1, cell
    li a2, 9
    sc.d a0, a2, (a1)
    ld a3, 0(a1)
.data
cell: .dword 1
.text
""")
        assert hart.regs[10] == 1  # failure
        assert hart.regs[13] == 1  # unchanged

    def test_amoadd_w_sign_extends(self):
        hart = run_body("""
    la a1, cell
    li a2, 1
    amoadd.w a0, a2, (a1)
.data
cell: .word 0xFFFFFFFF
.text
""")
        assert hart.regs[10] == MASK64  # old value -1 sign-extended


class TestTraps:
    def test_ecall(self):
        hart = make_hart(".text\n_start:\necall\n")
        with pytest.raises(EnvironmentCall):
            hart.step()

    def test_ebreak(self):
        hart = make_hart(".text\n_start:\nebreak\n")
        with pytest.raises(Breakpoint):
            hart.step()

    def test_illegal_instruction(self):
        hart = make_hart(".text\n_start:\n.word 0\n")
        with pytest.raises(IllegalInstructionTrap):
            hart.step()

    def test_fence_i_flushes_decode_cache(self):
        hart = run_body("nop\nfence.i")
        # The nop and fence.i entries were flushed; only the final ebreak
        # (decoded after the flush) remains cached.
        assert list(hart._decode_cache) == [hart.pc]
