"""Tests for the RAW-dependency scoreboard."""

import pytest

from repro.spike.scoreboard import Scoreboard


class TestRegistration:
    def test_register_and_complete(self):
        sb = Scoreboard(2)
        miss = sb.register_miss(0, (("x", 5),))
        assert sb.blocks(0, (("x", 5),))
        assert sb.complete_miss(miss) == 0
        assert not sb.blocks(0, (("x", 5),))

    def test_miss_ids_unique(self):
        sb = Scoreboard(1)
        ids = {sb.register_miss(0, ()) for _ in range(10)}
        assert len(ids) == 10

    def test_per_core_isolation(self):
        sb = Scoreboard(2)
        sb.register_miss(0, (("x", 5),))
        assert not sb.blocks(1, (("x", 5),))

    def test_empty_registers_never_block(self):
        sb = Scoreboard(1)
        sb.register_miss(0, ())
        assert not sb.blocks(0, ())
        assert not sb.blocks(0, (("x", 1),))


class TestCounting:
    def test_register_held_until_all_misses_complete(self):
        """A vector load with several line misses releases its register
        only when the last miss is serviced."""
        sb = Scoreboard(1)
        first = sb.register_miss(0, (("v", 3),))
        second = sb.register_miss(0, (("v", 3),))
        sb.complete_miss(first)
        assert sb.blocks(0, (("v", 3),))
        sb.complete_miss(second)
        assert not sb.blocks(0, (("v", 3),))

    def test_different_register_classes_distinct(self):
        sb = Scoreboard(1)
        sb.register_miss(0, (("x", 3),))
        assert not sb.blocks(0, (("f", 3),))
        assert not sb.blocks(0, (("v", 3),))

    def test_blocks_on_any_of_several(self):
        sb = Scoreboard(1)
        sb.register_miss(0, (("f", 1),))
        assert sb.blocks(0, (("x", 2), ("f", 1)))


class TestQueries:
    def test_outstanding_counts(self):
        sb = Scoreboard(2)
        a = sb.register_miss(0, ())
        sb.register_miss(1, ())
        assert sb.outstanding() == 2
        assert sb.outstanding(0) == 1
        sb.complete_miss(a)
        assert sb.outstanding() == 1
        assert sb.outstanding(0) == 0

    def test_busy_registers(self):
        sb = Scoreboard(1)
        sb.register_miss(0, (("x", 5), ("x", 6)))
        assert sb.busy_registers(0) == {("x", 5), ("x", 6)}

    def test_double_complete_raises(self):
        sb = Scoreboard(1)
        miss = sb.register_miss(0, ())
        sb.complete_miss(miss)
        with pytest.raises(KeyError):
            sb.complete_miss(miss)
