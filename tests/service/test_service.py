"""The campaign service end-to-end: submit, execute, cache, recover.

Everything here is in-process (the serving loop is just ``run()``);
the cross-process crash story lives in ``test_torture.py``.  The
headline guarantees: service tables are bit-identical to an in-process
serial sweep, overlapping campaigns are served from the cache without
re-simulation, failures retry under the seeded policy and quarantine
as :class:`QuarantinedPoint`, and a corrupt cache entry is recomputed,
never served.
"""

import os
import signal

import pytest

from repro import api
from repro.resilience.locking import CampaignLockError, PathLock
from repro.resilience.supervisor import RetryPolicy
from repro.service.service import CampaignService, spool_submission
from repro.service.store import QueueFullError, ServiceError

KERNEL = "vector-axpy"
CORES = 2
SIZE = 64
AXES = {"noc.latency": [2, 6]}
METRICS = ("cycles", "instructions", "l1d_miss_rate")


def make_service(root, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("heartbeat_seconds", 0.05)
    return CampaignService(root, **kwargs)


def serial_reference(axes=None):
    return api.sweep(KERNEL, cores=CORES, size=SIZE, axes=axes or AXES,
                     on_error="skip")


@pytest.fixture
def root(tmp_path):
    return tmp_path / "service"


class TestEndToEnd:
    def test_submit_run_result_bit_identical_to_serial(self, root):
        with make_service(root) as service:
            job = service.submit(KERNEL, AXES, cores=CORES, size=SIZE)
            assert not service.status(job).complete
            completed = service.run()
            assert completed == 2
            status = service.status(job)
            assert status.complete and status.done == 2
            table = service.result(job)
        assert table.to_dict(METRICS) \
            == serial_reference().to_dict(METRICS)

    def test_overlapping_sweep_is_served_from_cache(self, root):
        with make_service(root) as service:
            job = service.submit(KERNEL, AXES, cores=CORES, size=SIZE)
            service.run()
            simulated = service.cache.writes
        with make_service(root) as service:
            wider = service.submit(
                KERNEL, {"noc.latency": [2, 6]}, cores=CORES, size=SIZE)
            service.run()
            status = service.status(wider)
            assert status.cache_hits == 2  # nothing re-simulated
            assert service.cache.writes == 0
            table = service.result(wider)
        assert service.monitor.counters["cache_hits"] == 2
        assert table.to_dict(METRICS) \
            == serial_reference().to_dict(METRICS)
        assert simulated == 2

    def test_result_waits_and_runs_the_queue(self, root):
        with make_service(root) as service:
            job = service.submit(KERNEL, AXES, cores=CORES, size=SIZE)
            table = service.result(job, wait=True)
        assert table.to_dict(METRICS) \
            == serial_reference().to_dict(METRICS)

    def test_result_on_incomplete_job_raises(self, root):
        with make_service(root) as service:
            job = service.submit(KERNEL, AXES, cores=CORES, size=SIZE)
            with pytest.raises(ServiceError, match="not complete"):
                service.result(job)

    def test_cancel_settles_pending_points(self, root):
        with make_service(root) as service:
            job = service.submit(KERNEL, AXES, cores=CORES, size=SIZE)
            status = service.cancel(job)
            assert status.state == "cancelled"
            assert status.cancelled == 2
            assert status.complete
            table = service.result(job)
        assert all(point.error_kind == "ServiceError"
                   for point in table.points)


class TestBackpressure:
    def test_full_queue_rejects_loudly(self, root):
        with make_service(root, max_queue=3) as service:
            service.submit(KERNEL, AXES, cores=CORES, size=SIZE)
            with pytest.raises(QueueFullError, match="rejected"):
                service.submit(KERNEL, {"noc.latency": [2, 4]},
                               cores=CORES, size=SIZE)
            assert service.monitor.counters["rejected"] == 1

    def test_unknown_kernel_rejected_before_journaling(self, root):
        with make_service(root) as service:
            with pytest.raises(ServiceError, match="unknown kernel"):
                service.submit("no-such-kernel", AXES)

    def test_unserialisable_submission_rejected(self, root):
        with make_service(root) as service:
            with pytest.raises(ServiceError, match="JSON"):
                service.submit(KERNEL, {"noc.latency": [object()]})


class TestLocking:
    def test_second_service_on_same_root_fails_fast(self, root):
        with make_service(root):
            with pytest.raises(CampaignLockError, match="in use"):
                make_service(root).open()

    def test_lock_is_released_on_close(self, root):
        with make_service(root):
            pass
        with make_service(root):
            pass  # re-acquire succeeds

    def test_spooled_submission_is_ingested(self, root):
        with make_service(root) as service:
            job = service.submit(KERNEL, AXES, cores=CORES, size=SIZE)
            service.run()
            # A second process cannot take the lock; it spools instead.
            spooled = api.submit(KERNEL, root=root, axes=AXES,
                                 cores=CORES, size=SIZE)
            assert (root / "inbox" / f"{spooled}.json").exists()
            assert api.status(spooled, root=root).state == "spooled"
            service.run()  # the server ingests and serves from cache
            status = service.status(spooled)
            assert status.complete and status.cache_hits == 2
            assert not (root / "inbox" / f"{spooled}.json").exists()
        assert api.result(spooled, root=root).to_dict(METRICS) \
            == api.result(job, root=root).to_dict(METRICS)

    def test_spooled_cancel_marker_is_applied(self, root):
        with make_service(root) as service:
            job = service.submit(KERNEL, AXES, cores=CORES, size=SIZE)
            api.cancel(job, root=root)  # lock held: leaves a marker
            assert (root / "inbox" / f"{job}.cancel").exists()
            status = service.status(job)  # ingests the marker
            assert status.state == "cancelled"
            assert not (root / "inbox" / f"{job}.cancel").exists()

    def test_unreadable_spool_file_is_set_aside(self, root):
        inbox = root / "inbox"
        inbox.mkdir(parents=True)
        (inbox / "job-broken.json").write_text("{not json")
        with make_service(root) as service:
            assert service.ingest_inbox() == 0
        assert (inbox / "job-broken.corrupt").exists()
        assert not (inbox / "job-broken.json").exists()

    def test_spooled_submission_rejected_by_bound_is_visible(self, root):
        spec = {"kernel": KERNEL, "cores": CORES, "size": SIZE,
                "axes": {"noc.latency": [2, 4, 6, 8]}, "overrides": {},
                "require_verified": True}
        spool_submission(root, spec, "job-too-big")
        with make_service(root, max_queue=3) as service:
            service.ingest_inbox()
        assert (root / "inbox" / "job-too-big.rejected").exists()
        with pytest.raises(QueueFullError, match="rejected"):
            api.status("job-too-big", root=root)


class TestFailureHandling:
    def test_crashed_worker_is_retried_then_completes(self, root):
        killed = []
        with make_service(
                root, workers=1, seed=7,
                retry=RetryPolicy(max_attempts=3, base_delay=0.01,
                                  max_delay=0.05)) as service:
            def chaos(running):
                if not killed:
                    killed.append(running.index)
                    os.kill(running.process.pid, signal.SIGKILL)
            service._chaos_on_spawn = chaos
            job = service.submit(KERNEL, AXES, cores=CORES, size=SIZE)
            service.run()
            assert killed  # the chaos actually fired
            assert service.monitor.counters["retries"] == 1
            table = service.result(job)
        assert table.to_dict(METRICS) \
            == serial_reference().to_dict(METRICS)

    def test_poison_point_is_quarantined(self, root):
        with make_service(
                root, workers=1, seed=7,
                retry=RetryPolicy(max_attempts=2, base_delay=0.01,
                                  max_delay=0.05)) as service:
            def chaos(running):
                if running.settings["noc.latency"] == 6:
                    os.kill(running.process.pid, signal.SIGKILL)
            service._chaos_on_spawn = chaos
            job = service.submit(KERNEL, AXES, cores=CORES, size=SIZE)
            service.run()
            status = service.status(job)
            assert status.quarantined == 1 and status.done == 1
            assert status.complete
            table = service.result(job)
        poisoned = [point for point in table.points
                    if point.error_kind == "QuarantinedPoint"]
        assert len(poisoned) == 1
        assert poisoned[0].settings == {"noc.latency": 6}
        assert len(poisoned[0].error.attempts) == 2
        assert poisoned[0].error.attempts[0].signal == signal.SIGKILL

    def test_wedged_worker_lease_expires_and_point_retries(self, root):
        """A SIGSTOPped worker stops heartbeating; its lease lapses,
        the executor reaps it and the point retries to completion."""
        wedged = []
        with make_service(
                root, workers=1, lease_seconds=0.5,
                term_grace_seconds=0.1, seed=7,
                retry=RetryPolicy(max_attempts=3, base_delay=0.01,
                                  max_delay=0.05)) as service:
            def chaos(running):
                if not wedged:
                    wedged.append(running.index)
                    os.kill(running.process.pid, signal.SIGSTOP)
            service._chaos_on_spawn = chaos
            job = service.submit(KERNEL, AXES, cores=CORES, size=SIZE)
            service.run()
            assert wedged
            assert service.monitor.counters["lease_expired"] >= 1
            table = service.result(job)
        assert table.to_dict(METRICS) \
            == serial_reference().to_dict(METRICS)


class TestCorruptCacheRecovery:
    def test_corrupt_entry_is_recomputed_not_served(self, root):
        with make_service(root) as service:
            job = service.submit(KERNEL, AXES, cores=CORES, size=SIZE)
            service.run()
            record = service.store.jobs[job]["points"][0]
            entry = service.cache._entry_path(record["cache_key"])
            blob = bytearray(entry.read_bytes())
            blob[-1] ^= 0xFF
            entry.write_bytes(bytes(blob))

            table = service.result(job, wait=True)  # recomputes
            aside = list(service.cache.quarantine_dir.iterdir())
            assert len(aside) == 1  # the rotten entry, set aside
            assert service.monitor.counters["cache_corrupt"] == 1
        assert table.to_dict(METRICS) \
            == serial_reference().to_dict(METRICS)

    def test_lock_free_result_reports_corruption(self, root):
        with make_service(root) as service:
            job = service.submit(KERNEL, AXES, cores=CORES, size=SIZE)
            service.run()
            key = service.store.jobs[job]["points"][0]["cache_key"]
        entry_path = CampaignService(root).cache._entry_path(key)
        entry_path.write_bytes(b"garbage")
        with pytest.raises(ServiceError, match="corrupt"):
            api.result(job, root=root)
        # wait=True takes the lock and heals it.
        table = api.result(job, root=root, wait=True, workers=2)
        assert table.to_dict(METRICS) \
            == serial_reference().to_dict(METRICS)


class TestApiFacade:
    def test_submit_status_result_cancel_without_server(self, root):
        job = api.submit(KERNEL, root=root, axes=AXES, cores=CORES,
                         size=SIZE)
        assert api.status(job, root=root).pending == 2
        table = api.result(job, root=root, wait=True, workers=2)
        assert table.to_dict(METRICS) \
            == serial_reference().to_dict(METRICS)
        # Lock-free read of the finished job.
        assert api.result(job, root=root).to_dict(METRICS) \
            == table.to_dict(METRICS)
        cancelled = api.cancel(job, root=root)
        assert cancelled.state == "cancelled"

    def test_unknown_job_raises(self, root):
        (root / "inbox").mkdir(parents=True)
        with pytest.raises(api.JobNotFoundError):
            api.status("job-missing", root=root)


class TestPathLockUnit:
    def test_conflict_reports_holder(self, tmp_path):
        target = tmp_path / "campaign.pkl"
        with PathLock(target):
            with pytest.raises(CampaignLockError, match="in use"):
                PathLock(target).acquire()

    def test_reacquire_after_release(self, tmp_path):
        target = tmp_path / "campaign.pkl"
        lock = PathLock(target)
        lock.acquire()
        lock.release()
        with PathLock(target):
            pass

    def test_double_acquire_same_object_raises(self, tmp_path):
        lock = PathLock(tmp_path / "campaign.pkl")
        lock.acquire()
        try:
            with pytest.raises(CampaignLockError):
                lock.acquire()
        finally:
            lock.release()
