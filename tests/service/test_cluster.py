"""The multi-node cluster tier: fenced grants, chaos, degradation.

The contract under test (ISSUE 10): a cluster campaign drains to a
:class:`SweepTable` bit-identical to a serial in-process sweep under
node death, transport partitions and SIGSTOP zombies, with exactly one
``complete`` journal event per point and every stale write rejected
*before* it reaches the journal.

Three layers of test:

* deterministic in-process protocol tests — one
  :class:`InProcessTransport`, explicit ``step()`` interleaving, fake
  clocks for lease/deadline arithmetic (no sleeps, no races);
* seeded transport-fault campaigns through :class:`FaultyTransport`
  (drop/delay/duplicate/partition) with real forked node workers;
* a cross-process chaos drill: real ``coyote-sim cluster --node``
  subprocesses on a shared filesystem root, one SIGKILLed and one
  SIGSTOPped mid-campaign.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import api
from repro.resilience.supervisor import RetryPolicy
from repro.service.cluster import (
    ClusterDispatcher,
    ClusterNode,
    NodeRegistry,
)
from repro.service.transport import (
    InProcessTransport,
    ServiceFaultPlan,
    ServiceFaultSpec,
)

KERNEL = "vector-axpy"
CORES = 2
SIZE = 64
AXES = {"noc.latency": [2, 6]}
METRICS = ("cycles", "instructions", "l1d_miss_rate")


def fast_retry():
    return RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0)


def serial_reference(axes=None):
    return api.sweep(KERNEL, cores=CORES, size=SIZE, axes=axes or AXES,
                     on_error="skip")


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_cluster(root, n_nodes=2, clock=None, node_kwargs=None,
                 **kwargs):
    kwargs.setdefault("transport", InProcessTransport())
    kwargs.setdefault("retry", fast_retry())
    if clock is not None:
        kwargs["clock"] = clock
    dispatcher = ClusterDispatcher(root, **kwargs)
    node_kwargs = dict(node_kwargs or {})
    node_kwargs.setdefault("heartbeat_seconds", 0.0)
    if clock is not None:
        node_kwargs.setdefault("clock", clock)
    nodes = [ClusterNode(root, f"n{rank}",
                         transport=dispatcher.transport, **node_kwargs)
             for rank in range(n_nodes)]
    return dispatcher, nodes


def drive(dispatcher, nodes, timeout=120.0):
    """Interleave dispatcher and node turns until the queue drains."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        progressed = dispatcher.step()
        for node in nodes:
            progressed |= node.step()
        if not dispatcher._inflight and not dispatcher.store.has_work():
            return
        if not progressed:
            time.sleep(0.01)
    raise AssertionError("cluster did not drain within the timeout")


def journal_events(root, kind):
    """Raw journal events of one type (call before close() compacts)."""
    events = []
    for line in (root / "journal.jsonl").read_text().splitlines():
        event = json.loads(line)
        if event.get("type") == kind:
            events.append(event)
    return events


def completes_per_point(root):
    counts: dict = {}
    for event in journal_events(root, "complete"):
        key = (event["job"], event["index"])
        counts[key] = counts.get(key, 0) + 1
    return counts


class TestNodeRegistry:
    def test_liveness_follows_the_injected_clock(self):
        clock = FakeClock()
        registry = NodeRegistry(deadline_seconds=5.0, clock=clock)
        assert registry.register("n1", workers=2)
        assert not registry.register("n1")  # known and alive: not fresh
        clock.advance(4.0)
        assert registry.heartbeat("n1")
        clock.advance(4.0)
        assert registry.reap() == []  # heartbeat reset the deadline
        clock.advance(2.0)
        assert registry.reap() == ["n1"]
        assert registry.reap() == []  # dead exactly once
        assert not registry.heartbeat("n1")  # dead: caller re-registers
        assert registry.register("n1")  # a woken zombie is re-admitted
        assert registry.alive() == ["n1"]

    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError, match="deadline_seconds"):
            NodeRegistry(deadline_seconds=0.0)


class TestClusterDrains:
    def test_two_nodes_bit_identical_to_serial(self, tmp_path):
        dispatcher, nodes = make_cluster(tmp_path / "root", n_nodes=2)
        with dispatcher:
            job = dispatcher.submit(KERNEL, AXES, cores=CORES,
                                    size=SIZE)
            drive(dispatcher, nodes)
            assert dispatcher.status(job).complete
            assert completes_per_point(tmp_path / "root") \
                == {(job, 0): 1, (job, 1): 1}
            counters = dispatcher.monitor.counters
            assert counters["nodes_registered"] == 2
            assert counters["stale_writes"] == 0
            assert counters["degradations"] == 0
            table = dispatcher.result(job)
        assert table.degradations == []
        assert table.to_dict(METRICS) \
            == serial_reference().to_dict(METRICS)

    def test_dispatcher_serves_cache_hits_itself(self, tmp_path):
        root = tmp_path / "root"
        dispatcher, nodes = make_cluster(root, n_nodes=1)
        with dispatcher:
            first = dispatcher.submit(KERNEL, AXES, cores=CORES,
                                      size=SIZE)
            drive(dispatcher, nodes)
            simulated = dispatcher.cache.writes
            again = dispatcher.submit(KERNEL, AXES, cores=CORES,
                                      size=SIZE)
            drive(dispatcher, nodes)
            status = dispatcher.status(again)
            assert status.complete and status.cache_hits == 2
            assert dispatcher.cache.writes == simulated  # no re-sim
            assert dispatcher.result(again).to_dict(METRICS) \
                == dispatcher.result(first).to_dict(METRICS)


class TestSeededTransportFaults:
    def test_drop_delay_duplicate_still_exactly_once(self, tmp_path):
        root = tmp_path / "root"
        plan = ServiceFaultPlan(
            faults=[ServiceFaultSpec(kind="drop", probability=0.25,
                                     start=1, end=60),
                    ServiceFaultSpec(kind="delay", probability=0.25,
                                     extra=3, start=1, end=60),
                    ServiceFaultSpec(kind="duplicate", probability=0.5,
                                     dst="dispatcher")],
            seed=7)
        dispatcher, nodes = make_cluster(
            root, n_nodes=2, fault_plan=plan, lease_seconds=0.5)
        with dispatcher:
            job = dispatcher.submit(KERNEL, AXES, cores=CORES,
                                    size=SIZE)
            drive(dispatcher, nodes)
            assert dispatcher.status(job).complete
            # The headline guarantee: chaos or not, the journal holds
            # exactly one complete per point.
            assert completes_per_point(root) \
                == {(job, 0): 1, (job, 1): 1}
            faults = dispatcher.transport.counters
            assert faults["sent"] > 0
            table = dispatcher.result(job)
        assert table.to_dict(METRICS) \
            == serial_reference().to_dict(METRICS)

    def test_partition_heals_and_drains(self, tmp_path):
        root = tmp_path / "root"
        plan = ServiceFaultPlan(
            faults=[ServiceFaultSpec(kind="partition", nodes=["n0"],
                                     start=4, end=40)],
            seed=3)
        dispatcher, nodes = make_cluster(
            root, n_nodes=2, fault_plan=plan, lease_seconds=0.5,
            node_deadline_seconds=0.5)
        with dispatcher:
            job = dispatcher.submit(KERNEL, AXES, cores=CORES,
                                    size=SIZE)
            drive(dispatcher, nodes)
            assert dispatcher.status(job).complete
            assert dispatcher.transport.counters["partitioned"] > 0
            assert completes_per_point(root) \
                == {(job, 0): 1, (job, 1): 1}
            table = dispatcher.result(job)
        assert table.to_dict(METRICS) \
            == serial_reference().to_dict(METRICS)


class TestFencing:
    """Protocol-level tests: messages are crafted by hand, the clock
    is fake, and no worker ever forks."""

    ONE_POINT = {"noc.latency": [2]}

    def grant_for(self, transport, endpoint):
        grants = [message for message in transport.receive(endpoint)
                  if message["type"] == "grant"]
        assert grants, f"no grant delivered to {endpoint}"
        return grants[-1]

    def test_zombie_fenced_write_is_rejected_not_journaled(
            self, tmp_path):
        root = tmp_path / "root"
        clock = FakeClock()
        dispatcher, _ = make_cluster(
            root, n_nodes=0, clock=clock, lease_seconds=30.0,
            node_deadline_seconds=120.0)
        transport = dispatcher.transport
        with dispatcher:
            job = dispatcher.submit(KERNEL, self.ONE_POINT,
                                    cores=CORES, size=SIZE)
            transport.send("dispatcher", {"type": "register",
                                          "node": "zombie",
                                          "workers": 1})
            transport.send("dispatcher", {"type": "request",
                                          "node": "zombie", "slots": 1})
            dispatcher.step()
            stale = self.grant_for(transport, "zombie")
            assert stale["fence"] == 1
            # The zombie goes silent (SIGSTOP); its lease lapses and
            # the point is re-granted to a live node under a new fence.
            clock.advance(31.0)
            dispatcher.step()
            transport.send("dispatcher", {"type": "register",
                                          "node": "live", "workers": 1})
            transport.send("dispatcher", {"type": "request",
                                          "node": "live", "slots": 1})
            dispatcher.step()
            fresh = self.grant_for(transport, "live")
            assert fresh["fence"] == 2
            # The zombie wakes and tries to commit under its old token.
            transport.send("dispatcher", {
                "type": "complete", "node": "zombie", "job": job,
                "index": 0, "fence": stale["fence"], "cache_key": None,
                "verified": True, "failure": None})
            dispatcher.step()
            assert dispatcher.monitor.counters["stale_writes"] == 1
            assert dispatcher.store.stale_writes == 1
            point = dispatcher.store.jobs[job]["points"][0]
            assert point["state"] == "leased"  # the live grant holds
            assert point["lease"]["worker"] == "live"
            # The live node commits under the fresh token.
            transport.send("dispatcher", {
                "type": "complete", "node": "live", "job": job,
                "index": 0, "fence": fresh["fence"], "cache_key": None,
                "verified": True, "failure": None})
            dispatcher.step()
            assert point["state"] == "done"
            completes = journal_events(root, "complete")
            assert len(completes) == 1
            assert completes[0]["fence"] == fresh["fence"]
            rejections = journal_events(root, "stale_write")
            assert len(rejections) == 1
            assert rejections[0]["fence"] == stale["fence"]

    def test_dead_node_leases_rebalance_once(self, tmp_path):
        root = tmp_path / "root"
        clock = FakeClock()
        dispatcher, _ = make_cluster(
            root, n_nodes=0, clock=clock, lease_seconds=300.0,
            node_deadline_seconds=5.0)
        transport = dispatcher.transport
        with dispatcher:
            job = dispatcher.submit(KERNEL, AXES, cores=CORES,
                                    size=SIZE)
            transport.send("dispatcher", {"type": "register",
                                          "node": "doomed",
                                          "workers": 2})
            transport.send("dispatcher", {"type": "request",
                                          "node": "doomed", "slots": 2})
            dispatcher.step()
            grants = [message
                      for message in transport.receive("doomed")
                      if message["type"] == "grant"]
            assert len(grants) == 2
            # Heartbeats keep both leases fresh while the node lives.
            clock.advance(3.0)
            transport.send("dispatcher", {"type": "heartbeat",
                                          "node": "doomed",
                                          "held": [[job, 0], [job, 1]]})
            dispatcher.step()
            # Then it goes silent past the node deadline.  An idle
            # bystander keeps the fleet alive, so this is a rebalance,
            # not a degradation.
            transport.send("dispatcher", {"type": "register",
                                          "node": "bystander",
                                          "workers": 1})
            clock.advance(6.0)
            transport.send("dispatcher", {"type": "heartbeat",
                                          "node": "bystander",
                                          "held": []})
            dispatcher.step()
            counters = dispatcher.monitor.counters
            assert counters["nodes_dead"] == 1
            assert counters["rebalanced"] == 2
            states = [point["state"]
                      for point in dispatcher.store.jobs[job]["points"]]
            assert states == ["pending", "pending"]
            attempts = journal_events(root, "attempt")
            assert [event["outcome"] for event in attempts] \
                == ["node-lost", "node-lost"]
            # A live replacement finishes the job under new fences.
            transport.send("dispatcher", {"type": "register",
                                          "node": "live", "workers": 2})
            transport.send("dispatcher", {"type": "request",
                                          "node": "live", "slots": 2})
            dispatcher.step()
            for grant in [message
                          for message in transport.receive("live")
                          if message["type"] == "grant"]:
                assert grant["fence"] > 2  # reminted, never reused
                transport.send("dispatcher", {
                    "type": "complete", "node": "live", "job": job,
                    "index": grant["index"], "fence": grant["fence"],
                    "cache_key": None, "verified": True,
                    "failure": None})
            dispatcher.step()
            assert dispatcher.status(job).complete
            assert completes_per_point(root) \
                == {(job, 0): 1, (job, 1): 1}
            # The zombie's late heartbeat re-admits it harmlessly.
            before = counters["nodes_registered"]
            transport.send("dispatcher", {"type": "heartbeat",
                                          "node": "doomed",
                                          "held": []})
            dispatcher.step()
            assert counters["nodes_registered"] == before + 1

    def test_unfenced_duplicate_complete_dropped_silently(
            self, tmp_path):
        root = tmp_path / "root"
        dispatcher, _ = make_cluster(root, n_nodes=0, fence=False)
        transport = dispatcher.transport
        with dispatcher:
            job = dispatcher.submit(KERNEL, self.ONE_POINT,
                                    cores=CORES, size=SIZE)
            transport.send("dispatcher", {"type": "register",
                                          "node": "n", "workers": 1})
            transport.send("dispatcher", {"type": "request",
                                          "node": "n", "slots": 1})
            dispatcher.step()
            grant = self.grant_for(transport, "n")
            assert grant["fence"] is None  # fencing disabled
            complete = {"type": "complete", "node": "n", "job": job,
                        "index": 0, "fence": None, "cache_key": None,
                        "verified": True, "failure": None}
            transport.send("dispatcher", dict(complete))
            transport.send("dispatcher", dict(complete))  # duplicate
            dispatcher.step()
            assert dispatcher.status(job).complete
            # Even unfenced, the duplicate never reaches the journal.
            assert completes_per_point(root) == {(job, 0): 1}
            assert dispatcher.store.stale_writes == 0


class TestDegradation:
    def test_no_nodes_degrades_to_local_and_completes(self, tmp_path):
        root = tmp_path / "root"
        clock = FakeClock()
        dispatcher, _ = make_cluster(root, n_nodes=0, clock=clock,
                                     grace_seconds=2.0)
        with dispatcher:
            job = dispatcher.submit(KERNEL, AXES, cores=CORES,
                                    size=SIZE)
            dispatcher.step()
            assert dispatcher._tier == "cluster"  # still in grace
            clock.advance(3.0)
            drive(dispatcher, [])
            assert dispatcher._tier == "local"
            assert dispatcher.status(job).complete
            table = dispatcher.result(job)
        assert len(table.degradations) == 1
        assert "no node registered" in table.degradations[0].reason
        assert table.to_dict(METRICS) \
            == serial_reference().to_dict(METRICS)

    def test_losing_the_whole_fleet_degrades(self, tmp_path):
        root = tmp_path / "root"
        clock = FakeClock()
        dispatcher, _ = make_cluster(
            root, n_nodes=0, clock=clock, lease_seconds=300.0,
            node_deadline_seconds=5.0, grace_seconds=300.0)
        transport = dispatcher.transport
        with dispatcher:
            job = dispatcher.submit(KERNEL, AXES, cores=CORES,
                                    size=SIZE)
            transport.send("dispatcher", {"type": "register",
                                          "node": "only", "workers": 1})
            dispatcher.step()
            clock.advance(6.0)  # the fleet of one goes silent
            drive(dispatcher, [])
            assert dispatcher._tier == "local"
            assert dispatcher.status(job).complete
            table = dispatcher.result(job)
        assert len(table.degradations) == 1
        assert "no live nodes" in table.degradations[0].reason
        assert table.to_dict(METRICS) \
            == serial_reference().to_dict(METRICS)


CHAOS_AXES = {"noc.latency": [2, 4, 6, 8]}


def _node_process(root, node_id, repo_env):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.coyote.cli", "cluster", "--node",
         "--root", str(root), "--node-id", node_id, "--workers", "1",
         "--heartbeat-seconds", "0.1", "--max-seconds", "120"],
        env=repo_env)


class TestCrossProcessChaos:
    def test_sigkill_and_sigstop_nodes_drain_exactly_once(
            self, tmp_path):
        """Three real node subprocesses on a filesystem transport; one
        is SIGKILLed mid-campaign and one SIGSTOPped past its node
        deadline (a zombie), then resumed.  The campaign must drain
        bit-identically with zero duplicate completes."""
        root = tmp_path / "root"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.abspath("src"),
                          env.get("PYTHONPATH", "")]))
        dispatcher = ClusterDispatcher(
            root, lease_seconds=1.0, node_deadline_seconds=1.0,
            retry=RetryPolicy(max_attempts=5, base_delay=0.0,
                              max_delay=0.0))
        children = {}
        try:
            with dispatcher:
                job = dispatcher.submit(KERNEL, CHAOS_AXES,
                                        cores=CORES, size=SIZE)
                for name in ("victim", "zombie", "survivor"):
                    children[name] = _node_process(root, name, env)
                counters = dispatcher.monitor.counters
                killed = stopped = False
                resume_at = None
                deadline = time.monotonic() + 180.0
                while time.monotonic() < deadline:
                    dispatcher.step()
                    if not killed and counters["grants"] >= 1:
                        children["victim"].kill()
                        killed = True
                    if killed and not stopped \
                            and counters["grants"] >= 2:
                        os.kill(children["zombie"].pid, signal.SIGSTOP)
                        stopped = True
                        resume_at = time.monotonic() + 1.5
                    if resume_at is not None \
                            and time.monotonic() >= resume_at:
                        os.kill(children["zombie"].pid, signal.SIGCONT)
                        resume_at = None
                    if not dispatcher.store.has_work() \
                            and not dispatcher._inflight:
                        break
                    time.sleep(0.02)
                if resume_at is not None:
                    os.kill(children["zombie"].pid, signal.SIGCONT)
                assert killed, "chaos never fired: no grant observed"
                assert dispatcher.status(job).complete
                # Zero duplicate completes, ever.
                assert completes_per_point(root) \
                    == {(job, index): 1 for index in range(4)}
                table = dispatcher.result(job)
        finally:
            for child in children.values():
                try:
                    os.kill(child.pid, signal.SIGCONT)
                except (OSError, ProcessLookupError):
                    pass
                child.terminate()
            for child in children.values():
                try:
                    child.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    child.kill()
                    child.wait()
        assert table.to_dict(METRICS) == api.sweep(
            KERNEL, cores=CORES, size=SIZE, axes=CHAOS_AXES,
            on_error="skip").to_dict(METRICS)
