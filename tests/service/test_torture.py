"""Crash-recovery torture: kill the service anywhere, lose nothing.

The acceptance property of the durable service: a service killed at
*any* journal write boundary — and at every byte offset inside one —
recovers by replay to a state from which the campaign runs to
completion, producing a sweep table bit-identical to an in-process
serial sweep, with no point executed-and-recorded twice.

The journal under torture is a *real* one: a subprocess runs a
campaign and hard-exits without cleanup (its PID dies with it, which
also exercises dead-owner lease recovery), and every prefix of the
bytes it left behind is a state some real crash could have produced.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import time

import pytest

from repro import api
from repro.service.journal import Journal
from repro.service.service import CampaignService
from repro.service.store import JobStore

KERNEL = "vector-axpy"
CORES = 2
SIZE = 64
AXES = {"noc.latency": [2, 6]}
JOB = "job-torture"
METRICS = ("cycles", "instructions", "l1d_miss_rate")

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

# Runs a campaign and hard-exits (no close(), no compaction): the
# journal left behind is exactly what a crashed service leaves.
CAPTURE_SCRIPT = """
import os, sys
from repro.service.service import CampaignService
service = CampaignService(sys.argv[1], workers=2, compact_every=0,
                          heartbeat_seconds=0.05)
service.open()
service.submit("{kernel}", {axes!r}, cores={cores}, size={size},
               job_id="{job}")
service.run()
os._exit(0)
""".format(kernel=KERNEL, axes=AXES, cores=CORES, size=SIZE, job=JOB)


def subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


@pytest.fixture(scope="module")
def captured(tmp_path_factory):
    """(root, journal bytes, serial reference table) of a completed
    campaign executed — and abandoned — by a dead process."""
    root = tmp_path_factory.mktemp("capture") / "service"
    subprocess.run([sys.executable, "-c", CAPTURE_SCRIPT, str(root)],
                   check=True, env=subprocess_env(), timeout=300)
    journal = (root / "journal.jsonl").read_bytes()
    reference = api.sweep(KERNEL, cores=CORES, size=SIZE, axes=AXES,
                          on_error="skip")
    return root, journal, reference


def journal_lines(blob: bytes) -> list[bytes]:
    return blob.split(b"\n")[:-1] if blob.endswith(b"\n") \
        else blob.split(b"\n")


def recovery_root(tmp_path, captured_root, prefix: bytes):
    """A service root as a crash at ``len(prefix)`` bytes leaves it."""
    root = tmp_path / "recovered"
    root.mkdir(parents=True)
    shutil.copytree(captured_root / "cache", root / "cache")
    (root / "journal.jsonl").write_bytes(prefix)
    return root


class TestJournalPrefixTorture:
    def test_every_byte_offset_reconstructs_a_committed_state(
            self, captured):
        """Replay never errors and never invents state: at any byte
        offset the fold sees exactly the events that committed."""
        root, blob, _ = captured
        lines = journal_lines(blob)
        assert len(lines) >= 1 + 2 * 2  # submit + claim/complete each
        scratch = root.parent / "prefix.jsonl"
        for cut in range(len(blob) + 1):
            scratch.write_bytes(blob[:cut])
            store = JobStore(Journal(scratch))
            store.open(readonly=True)  # must never raise
            if JOB in store.jobs:
                status = store.status(JOB)
                assert status.total == 2, f"cut at byte {cut}"

    def test_kill_at_every_line_boundary_then_run_to_completion(
            self, captured, tmp_path):
        """From every boundary state the restarted service finishes the
        campaign, bit-identical to the serial reference, without
        executing any completed point twice."""
        captured_root, blob, reference = captured
        lines = journal_lines(blob)
        for boundary in range(len(lines) + 1):
            prefix = b"".join(line + b"\n"
                              for line in lines[:boundary])
            root = recovery_root(tmp_path / f"b{boundary}",
                                 captured_root, prefix)
            with CampaignService(root, workers=2, compact_every=0,
                                 lease_seconds=5.0,
                                 heartbeat_seconds=0.05) as service:
                # Idempotent resubmit covers prefixes that predate the
                # original submit event.
                service.submit(KERNEL, AXES, cores=CORES, size=SIZE,
                               job_id=JOB)
                service.run()
                table = service.result(JOB)
                completes = {}
                for line in journal_lines(
                        (root / "journal.jsonl").read_bytes()):
                    event = json.loads(line)
                    if event["type"] == "complete":
                        key = (event["job"], event["index"])
                        completes[key] = completes.get(key, 0) + 1
            assert table.to_dict(METRICS) == reference.to_dict(METRICS), \
                f"boundary {boundary}/{len(lines)}"
            assert all(count == 1 for count in completes.values()), \
                f"point completed twice at boundary {boundary}"

    def test_dead_owner_leases_are_released_not_charged(
            self, captured, tmp_path):
        """A lease held by the dead capture process is released on
        recovery without spending a retry attempt."""
        captured_root, blob, _ = captured
        lines = journal_lines(blob)
        claim_only = [line for line in lines
                      if json.loads(line)["type"] in ("submit", "claim")]
        prefix = b"".join(line + b"\n" for line in claim_only)
        root = recovery_root(tmp_path, captured_root, prefix)
        with CampaignService(root, workers=2,
                             compact_every=0) as service:
            # open() already recovered: every dead lease went back to
            # pending with no attempt recorded.
            for point in service.store.jobs[JOB]["points"]:
                assert point["state"] == "pending"
                assert point["attempts"] == []
            assert service.monitor.counters["released"] \
                == len(claim_only) - 1


class TestCompactionTorture:
    def test_crash_between_snapshot_and_journal_reset(self, captured,
                                                      tmp_path):
        captured_root, blob, reference = captured
        root = recovery_root(tmp_path, captured_root, blob)
        with CampaignService(root, workers=2) as service:
            before = dict(service.store.jobs)
            service.store.compact()
            # The crash: the pre-compaction journal is still on disk.
            (root / "journal.jsonl").write_bytes(blob)
        with CampaignService(root, workers=2) as service:
            assert service.store.jobs == before
            table = service.result(JOB)
        assert table.to_dict(METRICS) == reference.to_dict(METRICS)

    def test_crash_mid_snapshot_write_is_ignored(self, captured,
                                                 tmp_path):
        captured_root, blob, reference = captured
        root = recovery_root(tmp_path, captured_root, blob)
        # A half-written scratch snapshot from a killed compaction.
        (root / "journal.jsonl.snap.tmp").write_bytes(b"half a snapsh")
        with CampaignService(root, workers=2) as service:
            table = service.result(JOB)
        assert table.to_dict(METRICS) == reference.to_dict(METRICS)


class TestServiceKill:
    """SIGKILL a live serving process; restart; nothing is lost."""

    AXES_WIDE = {"noc.latency": [2, 4, 6, 8]}
    # ~1s of simulation per point: a wide window to kill into, so the
    # campaign is provably mid-flight when SIGKILL lands.
    SIZE_SLOW = 16384

    def cli(self, *argv):
        return [sys.executable, "-m", "repro.coyote.cli", *argv]

    def test_sigkill_mid_run_then_restart_completes(self, tmp_path):
        root = tmp_path / "service"
        job = api.submit(KERNEL, root=root, axes=self.AXES_WIDE,
                         cores=CORES, size=self.SIZE_SLOW)
        server = subprocess.Popen(
            self.cli("serve", "--root", str(root), "--workers", "1",
                     "--log-level", "warning"),
            env=subprocess_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        try:
            # Let it make real progress, then kill it mid-campaign.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                status = api.status(job, root=root)
                if status.done >= 1:
                    break
                time.sleep(0.02)
            else:
                raise AssertionError("server made no progress")
        finally:
            server.kill()
            server.wait()
        killed_status = api.status(job, root=root)
        assert not killed_status.complete  # we really killed it mid-run

        drain = subprocess.run(
            self.cli("serve", "--root", str(root), "--workers", "2",
                     "--drain", "--lease-seconds", "2",
                     "--log-level", "warning"),
            env=subprocess_env(), timeout=300)
        assert drain.returncode == 0
        status = api.status(job, root=root)
        assert status.complete
        assert status.done == 4 and status.quarantined == 0

        reference = api.sweep(KERNEL, cores=CORES, size=self.SIZE_SLOW,
                              axes=self.AXES_WIDE, on_error="skip")
        assert api.result(job, root=root).to_dict(METRICS) \
            == reference.to_dict(METRICS)

        # Resubmitting the same sweep is served from the cache.
        again = api.submit(KERNEL, root=root, axes=self.AXES_WIDE,
                           cores=CORES, size=self.SIZE_SLOW)
        rerun = subprocess.run(
            self.cli("serve", "--root", str(root), "--drain",
                     "--log-level", "warning"),
            env=subprocess_env(), timeout=300)
        assert rerun.returncode == 0
        assert api.status(again, root=root).cache_hits >= 1
        assert api.result(again, root=root).to_dict(METRICS) \
            == reference.to_dict(METRICS)

    def test_sigterm_drains_and_exits_clean(self, tmp_path):
        root = tmp_path / "service"
        server = subprocess.Popen(
            self.cli("serve", "--root", str(root),
                     "--log-level", "warning"),
            env=subprocess_env())
        try:
            deadline = time.monotonic() + 60
            while not (root / "journal.jsonl").exists():
                assert time.monotonic() < deadline
                time.sleep(0.05)
            time.sleep(0.2)  # let it reach the serve loop
            server.send_signal(signal.SIGTERM)
            assert server.wait(timeout=60) == 0
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()

    def test_sigint_exits_130(self, tmp_path):
        root = tmp_path / "service"
        server = subprocess.Popen(
            self.cli("serve", "--root", str(root),
                     "--log-level", "warning"),
            env=subprocess_env())
        try:
            deadline = time.monotonic() + 60
            while not (root / "journal.jsonl").exists():
                assert time.monotonic() < deadline
                time.sleep(0.05)
            time.sleep(0.2)
            server.send_signal(signal.SIGINT)
            assert server.wait(timeout=60) == 130
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()
