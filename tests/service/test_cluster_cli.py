"""CLI surface of the cluster tier and the jobs listing filters.

These pin the operator-facing contract: `coyote-sim cluster` flag
defaults (fencing on unless explicitly disabled), configuration errors
exiting with the config code before any journal is touched, and the
`jobs list --json/--status` machine-readable listing.
"""

import json
from pathlib import Path

import pytest

from repro import api
from repro.coyote.cli import (
    EXIT_CONFIG,
    EXIT_OK,
    build_cluster_parser,
    cluster_main,
    jobs_main,
    main,
)
from repro.service.transport import ServiceFaultPlan

EXAMPLE_PLAN = Path(__file__).resolve().parents[2] \
    / "examples" / "service_fault_plan.json"


class TestClusterParser:
    def test_defaults_are_safe(self):
        args = build_cluster_parser().parse_args(["--root", "r"])
        assert args.fence is True          # fencing is opt-out
        assert args.node is False
        assert args.nodes == 2
        assert args.workers == 1
        assert args.node_deadline_seconds is None
        assert args.fault_plan is None
        assert args.drain is False

    def test_no_fence_and_node_mode(self):
        args = build_cluster_parser().parse_args(
            ["--root", "r", "--no-fence"])
        assert args.fence is False
        node = build_cluster_parser().parse_args(
            ["--root", "r", "--node", "--node-id", "n7"])
        assert node.node and node.node_id == "n7"

    def test_example_fault_plan_is_valid(self):
        plan = ServiceFaultPlan.load(EXAMPLE_PLAN)
        assert plan.seed == 7
        assert {spec.kind for spec in plan.faults} \
            == {"drop", "delay", "duplicate", "partition"}

    def test_bad_fault_plan_exits_config(self, tmp_path, capsys):
        bad = tmp_path / "plan.json"
        bad.write_text(json.dumps({"faults": [{"kind": "nope"}]}))
        code = cluster_main(["--root", str(tmp_path / "root"),
                             "--fault-plan", str(bad), "--nodes", "0",
                             "--drain", "--log-level", "warning"])
        assert code == EXIT_CONFIG
        assert "configuration error" in capsys.readouterr().err
        # Rejected before the cluster root was ever created.
        assert not (tmp_path / "root").exists()

    def test_bad_node_workers_exits_config(self, tmp_path, capsys):
        code = cluster_main(["--root", str(tmp_path / "root"), "--node",
                             "--workers", "0",
                             "--log-level", "warning"])
        assert code == EXIT_CONFIG
        assert "configuration error" in capsys.readouterr().err


class TestJobsList:
    @pytest.fixture
    def root(self, tmp_path):
        root = tmp_path / "service"
        active = api.submit("vector-axpy", root=root,
                            axes={"noc.latency": [2, 6]}, cores=2,
                            size=64)
        doomed = api.submit("vector-axpy", root=root,
                            axes={"noc.latency": [3, 5]}, cores=2,
                            size=64)
        api.cancel(doomed, root=root)
        return root, active, doomed

    def run_list(self, capsys, *flags):
        code = main(["jobs", "list", *flags])
        assert code == EXIT_OK
        return capsys.readouterr().out

    def test_json_listing_is_machine_readable(self, capsys, root):
        root, active, doomed = root
        out = self.run_list(capsys, "--root", str(root), "--json")
        document = json.loads(out)
        assert [entry["job_id"] for entry in document] \
            == [active, doomed]
        by_id = {entry["job_id"]: entry for entry in document}
        assert by_id[active]["state"] == "active"
        assert by_id[active]["pending"] == 2
        assert by_id[doomed]["state"] == "cancelled"

    def test_status_filter(self, capsys, root):
        root, active, doomed = root
        listed = json.loads(self.run_list(
            capsys, "--root", str(root), "--json", "--status", "active"))
        assert [entry["job_id"] for entry in listed] == [active]
        listed = json.loads(self.run_list(
            capsys, "--root", str(root), "--json", "--status",
            "cancelled"))
        assert [entry["job_id"] for entry in listed] == [doomed]
        assert json.loads(self.run_list(
            capsys, "--root", str(root), "--json", "--status",
            "complete")) == []

    def test_text_listing_respects_the_filter(self, capsys, root):
        root, active, doomed = root
        out = self.run_list(capsys, "--root", str(root), "--status",
                            "cancelled")
        assert doomed in out and active not in out
