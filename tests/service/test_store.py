"""The job store: lifecycle transitions, leases, bounds, replay.

Everything here runs against the real journal on disk, and the key
invariant — live state equals replayed state — is asserted by folding
the journal in a fresh store after each scenario.
"""

import pytest

from repro.service.journal import Journal
from repro.service.store import (
    JobNotFoundError,
    JobStore,
    QueueFullError,
    StaleWriteError,
)

POINTS = [{"noc.latency": 2}, {"noc.latency": 4}, {"noc.latency": 6}]
SPEC = {"kernel": "vector-axpy", "cores": 2, "size": 64,
        "axes": {"noc.latency": [2, 4, 6]}, "overrides": {},
        "require_verified": True}


def open_store(tmp_path, **kwargs):
    store = JobStore(Journal(tmp_path / "journal.jsonl"), **kwargs)
    store.open()
    return store


def replayed(tmp_path):
    """A fresh store folded purely from the journal on disk."""
    store = JobStore(Journal(tmp_path / "journal.jsonl"))
    store.open(readonly=True)
    return store


class TestLifecycle:
    def test_submit_claim_complete(self, tmp_path):
        store = open_store(tmp_path)
        store.submit("job-1", SPEC, POINTS)
        assert store.outstanding_points() == 3
        claimed = store.claim("w", now=100.0, lease_seconds=30.0)
        assert claimed is not None
        job_id, point = claimed
        assert (job_id, point["index"]) == ("job-1", 0)
        assert point["state"] == "leased"
        assert point["lease"] == {"worker": "w", "expires": 130.0,
                                  "fence": 1}
        store.complete("job-1", 0, cache_key="k0", verified=True,
                       failure=None)
        assert store.jobs["job-1"]["points"][0]["state"] == "done"
        status = store.status("job-1")
        assert (status.done, status.pending, status.leased) == (1, 2, 0)
        assert not status.complete
        assert replayed(tmp_path).jobs == store.jobs
        store.close()

    def test_resubmit_known_id_is_a_noop(self, tmp_path):
        store = open_store(tmp_path)
        store.submit("job-1", SPEC, POINTS)
        before = store.journal.seq
        store.submit("job-1", SPEC, POINTS)
        assert store.journal.seq == before
        store.close()

    def test_claims_follow_submission_order(self, tmp_path):
        store = open_store(tmp_path)
        store.submit("job-b", SPEC, POINTS[:1])
        store.submit("job-a", SPEC, POINTS[:1])
        job_id, _ = store.claim("w", now=0.0, lease_seconds=1.0)
        assert job_id == "job-b"  # first submitted, despite the name
        store.close()

    def test_eligible_veto_skips_points(self, tmp_path):
        store = open_store(tmp_path)
        store.submit("job-1", SPEC, POINTS)
        _, point = store.claim(
            "w", now=0.0, lease_seconds=1.0,
            eligible=lambda job, record: record["index"] != 0)
        assert point["index"] == 1
        store.close()

    def test_duplicate_complete_is_idempotent(self, tmp_path):
        store = open_store(tmp_path)
        store.submit("job-1", SPEC, POINTS)
        store.claim("w", now=0.0, lease_seconds=1.0)
        store.complete("job-1", 0, cache_key="first", verified=True,
                       failure=None)
        store.complete("job-1", 0, cache_key="second", verified=False,
                       failure={"kind": "X", "message": "dup"})
        point = store.jobs["job-1"]["points"][0]
        assert point["cache_key"] == "first"  # the first one won
        assert point["failure"] is None
        assert replayed(tmp_path).jobs == store.jobs
        store.close()

    def test_attempt_retry_then_quarantine(self, tmp_path):
        store = open_store(tmp_path)
        store.submit("job-1", SPEC, POINTS[:1])
        store.claim("w", now=0.0, lease_seconds=1.0)
        store.attempt("job-1", 0, outcome="crash", exit_code=-9,
                      stderr_tail="boom", final=False)
        point = store.jobs["job-1"]["points"][0]
        assert point["state"] == "pending"  # back in the queue
        assert len(point["attempts"]) == 1
        store.claim("w", now=0.0, lease_seconds=1.0)
        store.attempt("job-1", 0, outcome="crash", exit_code=-9,
                      stderr_tail="boom", final=True,
                      failure={"kind": "QuarantinedPoint",
                               "message": "poison"})
        assert point["state"] == "quarantined"
        status = store.status("job-1")
        assert status.quarantined == 1
        assert status.complete  # nothing left to execute
        assert replayed(tmp_path).jobs == store.jobs
        store.close()

    def test_release_returns_point_to_queue(self, tmp_path):
        store = open_store(tmp_path)
        store.submit("job-1", SPEC, POINTS[:1])
        store.claim("w", now=0.0, lease_seconds=1.0)
        store.release("job-1", 0)
        point = store.jobs["job-1"]["points"][0]
        assert point["state"] == "pending"
        assert point["lease"] is None
        assert len(point["attempts"]) == 0  # release charges nothing
        store.close()

    def test_invalidate_requeues_a_done_point(self, tmp_path):
        store = open_store(tmp_path)
        store.submit("job-1", SPEC, POINTS[:1])
        store.claim("w", now=0.0, lease_seconds=1.0)
        store.complete("job-1", 0, cache_key="k", verified=True,
                       failure=None)
        store.invalidate("job-1", 0)
        point = store.jobs["job-1"]["points"][0]
        assert point["state"] == "pending"
        assert point["cache_key"] is None
        assert replayed(tmp_path).jobs == store.jobs
        store.close()

    def test_cancel_settles_pending_not_leased(self, tmp_path):
        store = open_store(tmp_path)
        store.submit("job-1", SPEC, POINTS)
        store.claim("w", now=0.0, lease_seconds=30.0)
        store.cancel("job-1")
        states = [point["state"]
                  for point in store.jobs["job-1"]["points"]]
        assert states == ["leased", "cancelled", "cancelled"]
        # The in-flight lease settles normally.
        store.complete("job-1", 0, cache_key="k", verified=True,
                       failure=None)
        assert store.status("job-1").complete
        assert not store.has_work()
        store.close()

    def test_unknown_job_raises(self, tmp_path):
        store = open_store(tmp_path)
        with pytest.raises(JobNotFoundError, match="no job"):
            store.status("job-missing")
        with pytest.raises(JobNotFoundError):
            store.cancel("job-missing")
        store.close()


class TestBoundsAndLeases:
    def test_queue_bound_rejects_without_journaling(self, tmp_path):
        store = open_store(tmp_path, max_queue=4)
        store.submit("job-1", SPEC, POINTS)
        before = store.journal.seq
        with pytest.raises(QueueFullError, match="rejected"):
            store.submit("job-2", SPEC, POINTS)
        assert store.journal.seq == before
        # Completions free capacity.
        store.claim("w", now=0.0, lease_seconds=1.0)
        store.complete("job-1", 0, cache_key="k", verified=True,
                       failure=None)
        store.submit("job-2", SPEC, POINTS[:1])
        store.close()

    def test_expired_leases(self, tmp_path):
        store = open_store(tmp_path)
        store.submit("job-1", SPEC, POINTS[:2])
        store.claim("w", now=100.0, lease_seconds=30.0)
        store.claim("w", now=100.0, lease_seconds=90.0)
        assert store.expired_leases(now=120.0) == []
        lapsed = store.expired_leases(now=140.0)
        assert [point["index"] for _, point in lapsed] == [0]
        assert store.active_leases() == 2
        store.close()

    def test_renew_extends_a_lease(self, tmp_path):
        store = open_store(tmp_path)
        store.submit("job-1", SPEC, POINTS[:1])
        store.claim("w", now=100.0, lease_seconds=30.0)
        store.renew("job-1", 0, now=125.0, lease_seconds=30.0)
        assert store.expired_leases(now=140.0) == []
        assert store.expired_leases(now=156.0) != []
        store.close()


class TestFencing:
    def test_fences_are_minted_monotonically(self, tmp_path):
        store = open_store(tmp_path)
        store.submit("job-1", SPEC, POINTS)
        fences = []
        for _ in range(3):
            _, point = store.claim("w", now=0.0, lease_seconds=30.0)
            fences.append(point["lease"]["fence"])
        assert fences == [1, 2, 3]
        # A reclaim after release mints a strictly newer token.
        store.release("job-1", 0)
        _, point = store.claim("w2", now=0.0, lease_seconds=30.0)
        assert point["lease"]["fence"] == 4
        store.close()

    def test_stale_fence_rejected_before_journaling(self, tmp_path):
        store = open_store(tmp_path)
        store.submit("job-1", SPEC, POINTS[:1])
        store.claim("zombie", now=0.0, lease_seconds=30.0)
        store.release("job-1", 0)
        _, point = store.claim("live", now=0.0, lease_seconds=30.0)
        fresh = point["lease"]["fence"]
        with pytest.raises(StaleWriteError, match="stale fence"):
            store.complete("job-1", 0, cache_key="zombie-k",
                           verified=True, failure=None, fence=1)
        # The rejection itself is durable, the complete is not.
        assert store.stale_writes == 1
        assert point["state"] == "leased"
        store.complete("job-1", 0, cache_key="live-k", verified=True,
                       failure=None, fence=fresh)
        assert point["cache_key"] == "live-k"
        replay = replayed(tmp_path)
        assert replay.jobs == store.jobs
        assert replay.stale_writes == 1
        assert replay.fence_counter == store.fence_counter
        store.close()

    def test_fence_guards_attempt_and_renew_and_release(self, tmp_path):
        store = open_store(tmp_path)
        store.submit("job-1", SPEC, POINTS[:1])
        store.claim("zombie", now=0.0, lease_seconds=30.0)
        store.release("job-1", 0)
        store.claim("live", now=0.0, lease_seconds=30.0)
        with pytest.raises(StaleWriteError):
            store.attempt("job-1", 0, outcome="crash", exit_code=-9,
                          stderr_tail="", final=False, fence=1)
        with pytest.raises(StaleWriteError):
            store.renew("job-1", 0, now=1.0, lease_seconds=30.0,
                        fence=1)
        with pytest.raises(StaleWriteError):
            store.release("job-1", 0, fence=1)
        assert store.stale_writes == 3
        assert store.jobs["job-1"]["points"][0]["state"] == "leased"
        store.close()

    def test_unfenced_commands_bypass_the_check(self, tmp_path):
        # fence=None is the single-node executor: no token, no check.
        store = open_store(tmp_path)
        store.submit("job-1", SPEC, POINTS[:1])
        store.claim("w", now=0.0, lease_seconds=30.0)
        store.complete("job-1", 0, cache_key="k", verified=True,
                       failure=None)
        assert store.stale_writes == 0
        store.close()

    def test_snapshot_roundtrip_preserves_fence_state(self, tmp_path):
        store = open_store(tmp_path)
        store.submit("job-1", SPEC, POINTS[:1])
        store.claim("zombie", now=0.0, lease_seconds=30.0)
        store.release("job-1", 0)
        store.claim("live", now=0.0, lease_seconds=30.0)
        with pytest.raises(StaleWriteError):
            store.complete("job-1", 0, cache_key="k", verified=True,
                           failure=None, fence=1)
        store.compact()
        store.close()
        reopened = open_store(tmp_path)
        assert reopened.fence_counter == 2
        assert reopened.stale_writes == 1
        # New claims keep minting above the compacted high-water mark.
        reopened.release("job-1", 0)
        _, point = reopened.claim("w", now=0.0, lease_seconds=30.0)
        assert point["lease"]["fence"] == 3
        reopened.close()


class TestCompactionIntegration:
    def test_auto_compaction_preserves_state(self, tmp_path):
        store = open_store(tmp_path, compact_every=4)
        store.submit("job-1", SPEC, POINTS)
        for index in range(3):
            store.claim("w", now=0.0, lease_seconds=1.0)
            store.complete("job-1", index, cache_key=f"k{index}",
                           verified=True, failure=None)
        # 7 events with compact_every=4: at least one compaction ran.
        assert (tmp_path / "journal.jsonl.snap").exists()
        assert replayed(tmp_path).jobs == store.jobs
        store.close()
