"""The content-addressed result cache: keys, integrity, quarantine.

Three guarantees under test: the key covers everything that determines
a result (config knob, kernel image, fault seed — change any one and
the key changes), a corrupt entry is *never served and never fatal* —
every corruption mode yields a miss with the bad entry set aside — and
concurrent same-key writers from separate processes (a cluster's nodes
racing on one shared cache) leave exactly one checksummed entry with
no torn read ever observable.
"""

import multiprocessing
import os

import pytest

from repro.coyote.config import SimulationConfig
from repro.coyote.sweep import SweepPoint
from repro.kernels import vector_axpy
from repro.service.cache import (
    ResultCache,
    config_digest,
    kernel_digest,
    point_key,
    result_key,
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def make_point(latency=2):
    return SweepPoint(settings={"noc.latency": latency}, results=None,
                      verified=True)


def _hammer_put(root, key, barrier):
    """Child-process body for the same-key writer race: both writers
    put identical bytes (the content-addressing contract) as fast as
    they can."""
    cache = ResultCache(root)
    point = make_point()
    barrier.wait()
    for _ in range(50):
        cache.put(key, point)


class TestKeys:
    def test_config_digest_is_canonical(self):
        first = SimulationConfig.for_cores(2, **{"noc.latency": 4})
        second = SimulationConfig.for_cores(2, **{"noc.latency": 4})
        assert config_digest(first) == config_digest(second)

    def test_any_config_knob_changes_the_key(self):
        base = SimulationConfig.for_cores(2)
        for override in ({"noc.latency": 9}, {"l2_mode": "private"},
                         {"mem_latency": 55}, {"vlen_bits": 256}):
            changed = SimulationConfig.for_cores(2, **override)
            assert config_digest(changed) != config_digest(base), override

    def test_kernel_digest_covers_the_loaded_image(self):
        small = kernel_digest(vector_axpy(length=32, num_cores=2))
        again = kernel_digest(vector_axpy(length=32, num_cores=2))
        bigger = kernel_digest(vector_axpy(length=64, num_cores=2))
        assert small == again
        assert small != bigger

    def test_seed_is_part_of_the_key(self):
        assert result_key("c" * 64, "k" * 64, 0) \
            != result_key("c" * 64, "k" * 64, 1)

    def test_point_key_matches_run_point_recipe(self):
        workload = vector_axpy(length=32, num_cores=2)
        key = point_key({"noc.latency": 4}, 2, {}, workload)
        config = SimulationConfig.for_cores(2, **{"noc.latency": 4})
        assert key == result_key(config_digest(config),
                                 kernel_digest(workload),
                                 config.resilience.fault_seed)


class TestRoundtrip:
    def test_put_get(self, cache):
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        assert cache.put(key, make_point())
        fetched = cache.get(key)
        assert fetched.settings == {"noc.latency": 2}
        assert fetched.verified
        assert cache.stats() == {"hits": 1, "misses": 1, "corrupt": 0,
                                 "writes": 1}

    def test_duplicate_put_is_idempotent(self, cache):
        key = "ab" + "0" * 62
        cache.put(key, make_point())
        cache.put(key, make_point())  # at-least-once: same key, same bytes
        assert cache.get(key).settings == {"noc.latency": 2}

    def test_unpicklable_point_is_refused(self, cache):
        point = SweepPoint(settings={"x": lambda: 1}, results=None,
                           verified=False)
        assert not cache.put("cd" + "0" * 62, point)
        assert cache.get("cd" + "0" * 62) is None


class TestCorruption:
    KEY = "ef" + "0" * 62

    def entry_path(self, cache):
        return cache._entry_path(self.KEY)

    def corrupt_modes(self):
        return ("truncate", "flip", "garbage-header", "bad-pickle",
                "empty")

    def corrupt(self, cache, mode):
        path = self.entry_path(cache)
        blob = path.read_bytes()
        if mode == "truncate":
            path.write_bytes(blob[:len(blob) // 2])
        elif mode == "flip":
            mutated = bytearray(blob)
            mutated[-1] ^= 0xFF
            path.write_bytes(bytes(mutated))
        elif mode == "garbage-header":
            path.write_bytes(b"not a cache entry\n" + blob)
        elif mode == "bad-pickle":
            header, _, _body = blob.partition(b"\n")
            import hashlib
            fake = b"\x80\x05garbage"
            parts = header.split()
            parts[2] = hashlib.sha256(fake).hexdigest().encode()
            parts[3] = str(len(fake)).encode()
            path.write_bytes(b" ".join(parts) + b"\n" + fake)
        elif mode == "empty":
            path.write_bytes(b"")

    @pytest.mark.parametrize("mode", ["truncate", "flip",
                                      "garbage-header", "bad-pickle",
                                      "empty"])
    def test_corrupt_entry_is_quarantined_not_served(self, cache, mode):
        cache.put(self.KEY, make_point())
        self.corrupt(cache, mode)
        assert cache.get(self.KEY) is None  # never served, never fatal
        assert not self.entry_path(cache).exists()
        aside = list(cache.quarantine_dir.glob(f"{self.KEY}.*.corrupt"))
        assert len(aside) == 1
        assert cache.corrupt == 1
        # The slot is clean: a recompute can fill it again.
        assert cache.put(self.KEY, make_point())
        assert cache.get(self.KEY) is not None

    def test_repeated_corruption_keeps_distinct_quarantine_files(
            self, cache):
        for _ in range(3):
            cache.put(self.KEY, make_point())
            self.corrupt(cache, "flip")
            assert cache.get(self.KEY) is None
        aside = list(cache.quarantine_dir.glob(f"{self.KEY}.*.corrupt"))
        assert len(aside) == 3

    def test_no_scratch_files_left_behind(self, cache):
        cache.put(self.KEY, make_point())
        leftovers = [path for path in cache.objects.rglob("*")
                     if path.is_file() and path.suffix == ".tmp"]
        assert leftovers == []

    def test_concurrent_same_key_writers_never_tear(self, tmp_path):
        """Two separate processes race ``put`` on one key — the shape
        of a cluster's nodes finishing the same point against a shared
        cache.  The atomic-replace discipline must leave exactly one
        checksummed entry, and a reader polling throughout must never
        observe a torn entry (which would show up as a quarantined
        ``corrupt`` count, or an exception)."""
        root = tmp_path / "cache"
        key = self.KEY
        context = multiprocessing.get_context(
            "fork" if "fork"
            in multiprocessing.get_all_start_methods() else "spawn")
        barrier = context.Barrier(3)
        writers = [context.Process(target=_hammer_put,
                                   args=(root, key, barrier),
                                   daemon=True)
                   for _ in range(2)]
        for writer in writers:
            writer.start()
        reader = ResultCache(root)
        barrier.wait()  # release both writers at the same instant
        while any(writer.is_alive() for writer in writers):
            point = reader.get(key)  # must never raise, never tear
            if point is not None:
                assert point.settings == {"noc.latency": 2}
        for writer in writers:
            writer.join()
            assert writer.exitcode == 0
        assert reader.corrupt == 0
        final = reader.get(key)
        assert final.verified and final.settings == {"noc.latency": 2}
        entries = [path for path in reader.objects.rglob("*")
                   if path.is_file()]
        assert len(entries) == 1  # one entry, no scratch leftovers

    def test_atomic_write_via_replace(self, cache, monkeypatch):
        """A crash mid-put must never leave a partial entry under the
        key: the write lands via os.replace or not at all."""
        real_replace = os.replace
        calls = []

        def exploding_replace(src, dst):
            calls.append((src, dst))
            raise OSError("simulated crash at the replace boundary")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated"):
            cache.put(self.KEY, make_point())
        monkeypatch.setattr(os, "replace", real_replace)
        assert not self.entry_path(cache).exists()
        assert cache.get(self.KEY) is None
        assert cache.corrupt == 0  # a missing entry is a miss, not rot
