"""The event journal: append, replay, torn tails, compaction.

The property under test is crash consistency: after a hard kill at
*any* write boundary, reopening the journal reconstructs exactly the
events that committed — a torn final line is dropped (the event never
happened), mid-file garbage is a loud structured error, and the
snapshot/journal-reset window of compaction is harmless.
"""

import json

import pytest

from repro.resilience.checkpoint import CampaignCorruptError
from repro.service.journal import Journal


def open_journal(tmp_path, **kwargs):
    journal = Journal(tmp_path / "journal.jsonl", **kwargs)
    state, events = journal.load()
    return journal, state, events


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        journal, state, events = open_journal(tmp_path)
        assert state is None and events == []
        first = journal.append("submit", job="a")
        second = journal.append("claim", job="a", index=0)
        assert (first["seq"], second["seq"]) == (1, 2)
        journal.close()

        reopened = Journal(tmp_path / "journal.jsonl")
        state, events = reopened.load()
        assert state is None
        assert events == [first, second]
        assert reopened.seq == 2
        reopened.close()

    def test_appends_continue_the_sequence_after_reopen(self, tmp_path):
        journal, _, _ = open_journal(tmp_path)
        journal.append("submit", job="a")
        journal.close()
        reopened = Journal(tmp_path / "journal.jsonl")
        reopened.load()
        event = reopened.append("claim", job="a", index=0)
        assert event["seq"] == 2
        reopened.close()

    def test_append_before_load_raises(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        with pytest.raises(CampaignCorruptError, match="not open"):
            journal.append("submit", job="a")


class TestTornTail:
    def test_partial_final_line_is_dropped_and_truncated(self, tmp_path):
        journal, _, _ = open_journal(tmp_path)
        committed = journal.append("submit", job="a")
        journal.append("claim", job="a", index=0)
        journal.close()
        path = tmp_path / "journal.jsonl"
        blob = path.read_bytes()
        # Kill mid-append of the second event: keep a strict prefix.
        torn = blob[:len(blob) - 7]
        path.write_bytes(torn)

        reopened = Journal(path)
        _, events = reopened.load()
        assert events == [committed]
        # The torn bytes are gone: the next append starts a clean line.
        reopened.append("claim", job="a", index=0)
        reopened.close()
        lines = path.read_bytes().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)

    def test_readonly_load_does_not_truncate(self, tmp_path):
        journal, _, _ = open_journal(tmp_path)
        journal.append("submit", job="a")
        journal.append("claim", job="a", index=0)
        journal.close()
        path = tmp_path / "journal.jsonl"
        torn = path.read_bytes()[:-5]
        path.write_bytes(torn)

        reader = Journal(path)
        _, events = reader.load(readonly=True)
        assert len(events) == 1
        assert path.read_bytes() == torn  # untouched

    def test_every_byte_prefix_recovers(self, tmp_path):
        """A kill at *any* byte offset yields a clean recovery: the
        committed prefix of events, never an error, never a torn
        half-event."""
        journal, _, _ = open_journal(tmp_path)
        appended = [journal.append("submit", job="a", points=[{}] * 3)]
        for index in range(3):
            appended.append(journal.append("claim", job="a",
                                           index=index, worker="w"))
            appended.append(journal.append("complete", job="a",
                                           index=index, cache_key="k"))
        journal.close()
        blob = (tmp_path / "journal.jsonl").read_bytes()
        boundaries = [0]
        offset = 0
        for line in blob.splitlines(keepends=True):
            offset += len(line)
            boundaries.append(offset)

        for cut in range(len(blob) + 1):
            scratch = tmp_path / "prefix.jsonl"
            scratch.write_bytes(blob[:cut])
            reader = Journal(scratch)
            _, events = reader.load(readonly=True)
            # An event whose JSON body fully committed counts even when
            # its trailing newline did not make it to disk.
            committed = sum(1 for b in boundaries[1:] if b - 1 <= cut)
            assert events == appended[:committed], f"cut at byte {cut}"

    def test_append_after_newline_less_tail_stays_one_per_line(
            self, tmp_path):
        """The committed-body-no-newline crash window: the next append
        must not concatenate onto the tail event's line."""
        journal, _, _ = open_journal(tmp_path)
        journal.append("submit", job="a")
        journal.close()
        path = tmp_path / "journal.jsonl"
        path.write_bytes(path.read_bytes().rstrip(b"\n"))

        reopened = Journal(path)
        _, events = reopened.load()
        assert len(events) == 1
        reopened.append("claim", job="a", index=0)
        reopened.close()
        lines = path.read_bytes().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["seq"] == number
                   for number, line in enumerate(lines, start=1))

    def test_midfile_corruption_is_a_loud_error(self, tmp_path):
        journal, _, _ = open_journal(tmp_path)
        journal.append("submit", job="a")
        journal.append("claim", job="a", index=0)
        journal.close()
        path = tmp_path / "journal.jsonl"
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"{broken!\n" + lines[1])
        with pytest.raises(CampaignCorruptError, match="not valid JSON"):
            Journal(path).load()

    def test_non_object_line_is_corrupt(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_bytes(b"[1,2]\n")
        with pytest.raises(CampaignCorruptError, match="not an event"):
            Journal(path).load()

    def test_missing_seq_is_corrupt(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_bytes(b'{"type":"submit"}\n')
        with pytest.raises(CampaignCorruptError, match="sequence"):
            Journal(path).load()

    def test_backwards_seq_is_corrupt(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_bytes(b'{"seq":2,"type":"a"}\n{"seq":1,"type":"b"}\n')
        with pytest.raises(CampaignCorruptError, match="backwards"):
            Journal(path).load()


class TestCompaction:
    def test_compact_folds_state_and_resets_journal(self, tmp_path):
        journal, _, _ = open_journal(tmp_path)
        journal.append("submit", job="a")
        journal.append("claim", job="a", index=0)
        journal.compact({"jobs": {"a": "folded"}})
        assert (tmp_path / "journal.jsonl").read_bytes() == b""
        after = journal.append("complete", job="a", index=0)
        assert after["seq"] == 3  # sequence survives compaction
        journal.close()

        reopened = Journal(tmp_path / "journal.jsonl")
        state, events = reopened.load()
        assert state == {"jobs": {"a": "folded"}}
        assert events == [after]
        reopened.close()

    def test_kill_between_snapshot_and_journal_reset(self, tmp_path):
        """The compaction crash window: snapshot replaced, old journal
        still on disk.  Replay must skip the already-folded events."""
        journal, _, _ = open_journal(tmp_path)
        folded = [journal.append("submit", job="a"),
                  journal.append("claim", job="a", index=0)]
        old_journal = (tmp_path / "journal.jsonl").read_bytes()
        journal.compact({"jobs": {"a": "folded"}})
        journal.close()
        # Simulate the kill: the pre-compaction journal reappears.
        (tmp_path / "journal.jsonl").write_bytes(old_journal)

        reopened = Journal(tmp_path / "journal.jsonl")
        state, events = reopened.load()
        assert state == {"jobs": {"a": "folded"}}
        assert events == []  # all <= snapshot.seq: skipped
        # And appends continue past the skipped history.
        assert reopened.append("complete", job="a", index=0)["seq"] \
            == len(folded) + 1
        reopened.close()

    def test_corrupt_snapshot_is_a_loud_error(self, tmp_path):
        journal, _, _ = open_journal(tmp_path)
        journal.append("submit", job="a")
        journal.compact({"jobs": {}})
        journal.close()
        snap = tmp_path / "journal.jsonl.snap"
        blob = bytearray(snap.read_bytes())
        blob[-3] ^= 0xFF
        snap.write_bytes(bytes(blob))
        with pytest.raises(CampaignCorruptError, match="checksum"):
            Journal(tmp_path / "journal.jsonl").load()

    def test_truncated_snapshot_is_a_loud_error(self, tmp_path):
        journal, _, _ = open_journal(tmp_path)
        journal.append("submit", job="a")
        journal.compact({"jobs": {}})
        journal.close()
        snap = tmp_path / "journal.jsonl.snap"
        snap.write_bytes(snap.read_bytes()[:-10])
        with pytest.raises(CampaignCorruptError, match="checksum"):
            Journal(tmp_path / "journal.jsonl").load()

    def test_foreign_snapshot_is_a_loud_error(self, tmp_path):
        (tmp_path / "journal.jsonl.snap").write_bytes(b"not a snapshot")
        with pytest.raises(CampaignCorruptError, match="not a service"):
            Journal(tmp_path / "journal.jsonl").load()
