"""Cluster transports and the seeded service-fault layer.

The transport contract is deliberately weak (datagrams, ordered per
sender, may be lost/delayed/duplicated); these tests pin the parts the
cluster protocol leans on: per-sender ordering and atomicity on the
filesystem spool, JSON-strictness on both transports, and — most
importantly — that :class:`FaultyTransport` is a pure function of
(plan, message sequence): the same seed replays the same faults.
"""

import json

import pytest

from repro.service.transport import (
    FaultyTransport,
    FilesystemTransport,
    InProcessTransport,
    ServiceFaultPlan,
    ServiceFaultSpec,
    TransportError,
)


class TestInProcessTransport:
    def test_send_receive_drains_in_order(self):
        transport = InProcessTransport()
        transport.send("a", {"n": 1})
        transport.send("a", {"n": 2})
        transport.send("b", {"n": 3})
        assert transport.receive("a") == [{"n": 1}, {"n": 2}]
        assert transport.receive("a") == []
        assert transport.receive("b") == [{"n": 3}]

    def test_messages_do_not_share_mutable_state(self):
        transport = InProcessTransport()
        message = {"inner": {"n": 1}}
        transport.send("a", message)
        message["inner"]["n"] = 99
        assert transport.receive("a") == [{"inner": {"n": 1}}]

    def test_unserialisable_message_rejected(self):
        transport = InProcessTransport()
        with pytest.raises(TransportError, match="JSON"):
            transport.send("a", {"bad": object()})


class TestFilesystemTransport:
    def test_per_sender_order_survives_interleaving(self, tmp_path):
        alice = FilesystemTransport(tmp_path, "alice")
        bob = FilesystemTransport(tmp_path, "bob")
        alice.send("dispatcher", {"from": "alice", "n": 1})
        bob.send("dispatcher", {"from": "bob", "n": 1})
        alice.send("dispatcher", {"from": "alice", "n": 2})
        reader = FilesystemTransport(tmp_path, "dispatcher")
        messages = reader.receive("dispatcher")
        assert [m["n"] for m in messages if m["from"] == "alice"] \
            == [1, 2]
        assert [m["n"] for m in messages if m["from"] == "bob"] == [1]
        assert reader.receive("dispatcher") == []  # consumed

    def test_scratch_files_are_invisible_to_receivers(self, tmp_path):
        transport = FilesystemTransport(tmp_path, "w")
        transport.send("dst", {"n": 1})
        box = tmp_path / "mail" / "dst"
        (box / ".send-torn.tmp").write_text("{not json")
        assert transport.receive("dst") == [{"n": 1}]
        # The scratch file is ignored, not consumed or crashed on.
        assert (box / ".send-torn.tmp").exists()

    def test_unreadable_spool_entry_is_skipped(self, tmp_path):
        transport = FilesystemTransport(tmp_path, "w")
        transport.send("dst", {"n": 1})
        (tmp_path / "mail" / "dst" / "rot-0000000000.msg") \
            .write_text("{torn")
        assert transport.receive("dst") == [{"n": 1}]


class TestFaultPlan:
    def test_roundtrip_matches_the_resilience_plan_shape(self, tmp_path):
        plan = ServiceFaultPlan(
            faults=[ServiceFaultSpec(kind="drop", probability=0.5,
                                     start=2, end=9, dst="node-1"),
                    ServiceFaultSpec(kind="partition",
                                     nodes=["node-2"])],
            seed=42)
        path = plan.save(tmp_path / "plan.json")
        document = json.loads(path.read_text())
        assert document["seed"] == 42
        assert [f["kind"] for f in document["faults"]] \
            == ["drop", "partition"]
        loaded = ServiceFaultPlan.load(path)
        assert loaded.to_dict() == plan.to_dict()

    def test_validation_failures_name_the_problem(self, tmp_path):
        with pytest.raises(ValueError, match="unknown service fault"):
            ServiceFaultSpec(kind="corrupt").validate()
        with pytest.raises(ValueError, match="probability"):
            ServiceFaultSpec(kind="drop", probability=1.5).validate()
        with pytest.raises(ValueError, match="window"):
            ServiceFaultSpec(kind="drop", start=9, end=2).validate()
        with pytest.raises(ValueError, match="nodes"):
            ServiceFaultSpec(kind="partition").validate()
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"faults": [{"kind": "nope"}]}))
        with pytest.raises(ValueError, match="bad.json"):
            ServiceFaultPlan.load(bad)
        bad.write_text(json.dumps(["not", "an", "object"]))
        with pytest.raises(ValueError, match="'faults' list"):
            ServiceFaultPlan.load(bad)


def _run_sequence(plan):
    """Feed a fixed message sequence through a fresh FaultyTransport
    and return (delivered messages per endpoint, counters)."""
    transport = FaultyTransport(InProcessTransport(), plan)
    for n in range(20):
        transport.send("dispatcher", {"node": "node-1", "n": n})
        transport.send("node-1", {"src": "dispatcher", "n": n})
    received = {"dispatcher": transport.receive("dispatcher"),
                "node-1": transport.receive("node-1")}
    transport.close()
    return received, dict(transport.counters)


class TestFaultyTransport:
    def test_same_seed_same_faults(self):
        def plan():
            return ServiceFaultPlan(
                faults=[ServiceFaultSpec(kind="drop", probability=0.4),
                        ServiceFaultSpec(kind="duplicate",
                                         probability=0.3),
                        ServiceFaultSpec(kind="delay", probability=0.3,
                                         extra=2)],
                seed=7)
        first = _run_sequence(plan())
        second = _run_sequence(plan())
        assert first == second
        # And a different seed really does change the outcome.
        different = ServiceFaultPlan(faults=plan().faults, seed=8)
        assert _run_sequence(different) != first

    def test_partition_cuts_both_directions_only_across(self):
        plan = ServiceFaultPlan(
            faults=[ServiceFaultSpec(kind="partition",
                                     nodes=["node-1"])])
        transport = FaultyTransport(InProcessTransport(), plan)
        transport.send("dispatcher", {"node": "node-1", "n": 1})
        transport.send("node-1", {"src": "dispatcher", "n": 2})
        transport.send("dispatcher", {"node": "node-2", "n": 3})
        assert transport.receive("dispatcher") == [{"node": "node-2",
                                                    "n": 3}]
        assert transport.receive("node-1") == []
        assert transport.counters["partitioned"] == 2

    def test_partition_window_heals(self):
        plan = ServiceFaultPlan(
            faults=[ServiceFaultSpec(kind="partition", nodes=["node-1"],
                                     start=0, end=3)])
        transport = FaultyTransport(InProcessTransport(), plan)
        for n in range(5):
            transport.send("dispatcher", {"node": "node-1", "n": n})
        delivered = [m["n"] for m in transport.receive("dispatcher")]
        assert delivered == [2, 3, 4]  # ops 3.. are past the window

    def test_duplicate_delivers_twice(self):
        # The op clock counts sends from 1: window [1, 2) is exactly
        # the first send.
        plan = ServiceFaultPlan(
            faults=[ServiceFaultSpec(kind="duplicate", start=1, end=2)])
        transport = FaultyTransport(InProcessTransport(), plan)
        transport.send("dispatcher", {"node": "n", "n": 1})
        transport.send("dispatcher", {"node": "n", "n": 2})
        assert [m["n"] for m in transport.receive("dispatcher")] \
            == [1, 1, 2]

    def test_delay_defers_by_operations_and_close_flushes(self):
        plan = ServiceFaultPlan(
            faults=[ServiceFaultSpec(kind="delay", start=1, end=2,
                                     extra=2)])
        transport = FaultyTransport(InProcessTransport(), plan)
        transport.send("dispatcher", {"node": "n", "n": 1})  # delayed
        assert transport.receive("dispatcher") == []
        transport.send("dispatcher", {"node": "n", "n": 2})
        assert [m["n"] for m in transport.receive("dispatcher")] == [2]
        transport.send("dispatcher", {"node": "n", "n": 3})  # op 3: release
        assert sorted(m["n"] for m in transport.receive("dispatcher")) \
            == [1, 3]
        # A straggler still delayed at close is delivered, not lost.
        plan2 = ServiceFaultPlan(
            faults=[ServiceFaultSpec(kind="delay", start=1, end=2,
                                     extra=50)])
        inner = InProcessTransport()
        wrapper = FaultyTransport(inner, plan2)
        wrapper.send("dispatcher", {"node": "n", "n": 9})
        assert wrapper.receive("dispatcher") == []
        wrapper.close()
        assert [m["n"] for m in inner.receive("dispatcher")] == [9]
