"""Tests for the sparse physical memory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.memory import PAGE_SIZE, MemoryError_, SparseMemory


class TestScalarAccess:
    def test_uninitialised_reads_zero(self, memory):
        assert memory.load_int(0x1234, 8) == 0

    def test_store_load_roundtrip(self, memory):
        memory.store_int(0x100, 0xDEADBEEF, 4)
        assert memory.load_int(0x100, 4) == 0xDEADBEEF

    def test_little_endian(self, memory):
        memory.store_int(0x100, 0x0102030405060708, 8)
        assert memory.load_bytes(0x100, 8) == \
            bytes([8, 7, 6, 5, 4, 3, 2, 1])

    def test_store_truncates_to_size(self, memory):
        memory.store_int(0x100, 0x1FF, 1)
        assert memory.load_int(0x100, 1) == 0xFF

    def test_adjacent_bytes_untouched(self, memory):
        memory.store_int(0x100, 0xFFFFFFFFFFFFFFFF, 8)
        memory.store_int(0x104, 0, 1)
        assert memory.load_int(0x100, 8) == 0xFFFFFF00FFFFFFFF

    def test_cross_page_access(self, memory):
        address = PAGE_SIZE - 4
        memory.store_int(address, 0x1122334455667788, 8)
        assert memory.load_int(address, 8) == 0x1122334455667788

    def test_high_addresses(self, memory):
        memory.store_int(0xFFFF_FFFF_0000, 42, 8)
        assert memory.load_int(0xFFFF_FFFF_0000, 8) == 42


class TestBulkAccess:
    def test_store_load_bytes(self, memory):
        blob = bytes(range(256))
        memory.store_bytes(0x4000, blob)
        assert memory.load_bytes(0x4000, 256) == blob

    def test_bulk_cross_many_pages(self, memory):
        blob = bytes([i % 251 for i in range(3 * PAGE_SIZE)])
        memory.store_bytes(100, blob)
        assert memory.load_bytes(100, len(blob)) == blob

    def test_load_partially_unallocated(self, memory):
        memory.store_bytes(PAGE_SIZE - 2, b"ab")
        result = memory.load_bytes(PAGE_SIZE - 4, 8)
        assert result == b"\x00\x00ab\x00\x00\x00\x00"

    def test_negative_length_rejected(self, memory):
        with pytest.raises(MemoryError_):
            memory.load_bytes(0, -1)

    def test_empty_store(self, memory):
        memory.store_bytes(0, b"")
        assert memory.allocated_bytes() == 0


class TestIntrospection:
    def test_allocation_is_lazy(self, memory):
        memory.load_bytes(0, 1 << 20)
        assert memory.allocated_bytes() == 0

    def test_allocation_counts_pages(self, memory):
        memory.store_int(0, 1, 1)
        memory.store_int(10 * PAGE_SIZE, 1, 1)
        assert memory.allocated_bytes() == 2 * PAGE_SIZE

    def test_touched_pages_sorted(self, memory):
        memory.store_int(5 * PAGE_SIZE, 1, 1)
        memory.store_int(2 * PAGE_SIZE, 1, 1)
        assert memory.touched_pages() == [2 * PAGE_SIZE, 5 * PAGE_SIZE]


@settings(max_examples=50)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 20),
                          st.binary(min_size=1, max_size=64)),
                min_size=1, max_size=20))
def test_matches_flat_model(operations):
    """Random writes against a flat bytearray reference model."""
    memory = SparseMemory()
    reference = bytearray((1 << 20) + 64)
    for address, data in operations:
        memory.store_bytes(address, data)
        reference[address:address + len(data)] = data
    for address, data in operations:
        assert memory.load_bytes(address, len(data)) == \
            bytes(reference[address:address + len(data)])
