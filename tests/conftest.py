"""Shared test helpers: assemble-and-run harnesses for tiny programs."""

from __future__ import annotations

import pytest

from repro.assembler import assemble
from repro.soc.memory import SparseMemory
from repro.spike.hart import Hart


TEXT_BASE = 0x8000_0000


def make_hart(source: str, vlen_bits: int = 256, hart_id: int = 0) -> Hart:
    """Assemble ``source`` (raw body; no prolog added), load it, and
    return a hart reset to the entry point."""
    program = assemble(source)
    memory = SparseMemory()
    program.load_into(memory)
    hart = Hart(hart_id, memory, vlen_bits=vlen_bits, reset_pc=program.entry)
    hart.program_symbols = program.symbols  # type: ignore[attr-defined]
    return hart


def run_steps(hart: Hart, count: int) -> None:
    """Step a hart ``count`` times."""
    for _ in range(count):
        hart.step()


def run_until_ebreak(hart: Hart, max_steps: int = 100_000) -> int:
    """Step until an ``ebreak``; returns the number of steps executed."""
    from repro.spike.hart import Breakpoint

    for step_count in range(max_steps):
        try:
            hart.step()
        except Breakpoint:
            return step_count
    raise AssertionError(f"no ebreak within {max_steps} steps")


@pytest.fixture
def memory() -> SparseMemory:
    return SparseMemory()
