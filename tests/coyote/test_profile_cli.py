"""The ``coyote-sim profile`` subcommand (flat, annotated, JSON)."""

import json

import pytest

from repro.coyote.cli import EXIT_CONFIG, main as cli_main
from repro.telemetry.profile_report import PROFILE_SCHEMA


def test_profile_flat_report(capsys):
    exit_code = cli_main(["profile", "--kernel", "scalar-spmv",
                          "--cores", "2", "--size", "8"])
    captured = capsys.readouterr()
    assert exit_code == 0, captured.out
    assert "output verified      : True" in captured.out
    assert "CPI stack (aggregate over 2 core(s)" in captured.out
    assert "hot blocks" in captured.out
    assert "retired" in captured.out


def test_profile_annotated_and_per_core(capsys):
    exit_code = cli_main(["profile", "--kernel", "scalar-matmul",
                          "--cores", "2", "--size", "6",
                          "--annotate", "--per-core", "--top", "3"])
    captured = capsys.readouterr()
    assert exit_code == 0, captured.out
    assert "CPI stack (core 1)" in captured.out
    assert "block #1" in captured.out


def test_profile_json_document(tmp_path, capsys):
    out = tmp_path / "profile.json"
    exit_code = cli_main(["profile", "--kernel", "scalar-spmv",
                          "--cores", "2", "--size", "8",
                          "--json", str(out)])
    assert exit_code == 0, capsys.readouterr().out
    document = json.loads(out.read_text())
    assert document["schema"] == PROFILE_SCHEMA
    assert document["kernel"] == "scalar-spmv"
    assert document["verified"] is True
    assert document["hot_blocks"]
    for stack in document["cpi_stacks"]:
        assert sum(stack["classes"].values()) == document["cycles"]


def test_profile_chrome_trace(tmp_path, capsys):
    out = tmp_path / "trace.json"
    exit_code = cli_main(["profile", "--kernel", "scalar-spmv",
                          "--cores", "2", "--size", "8",
                          "--chrome-trace", str(out)])
    assert exit_code == 0, capsys.readouterr().out
    trace = json.loads(out.read_text())
    assert any(event.get("ph") == "C"
               for event in trace["traceEvents"])


@pytest.mark.parametrize("argv", [
    ["profile", "--json", "/nonexistent-dir/p.json"],
    ["profile", "--top", "0"],
])
def test_profile_config_errors(argv, capsys):
    exit_code = cli_main(argv)
    captured = capsys.readouterr()
    assert exit_code == EXIT_CONFIG
    assert "configuration error" in captured.err
