"""Tests for the per-cycle activity profile."""

import pytest

from repro.coyote import Simulation, SimulationConfig
from repro.kernels import scalar_matmul, stream_triad


def run(workload, cores, **overrides):
    simulation = Simulation(
        SimulationConfig.for_cores(cores, **overrides),
        workload.program)
    return simulation.run()


class TestActivityProfile:
    def test_activity_sums_to_cycles(self):
        workload = scalar_matmul(size=8, num_cores=4)
        results = run(workload, 4)
        assert sum(results.activity.values()) == results.cycles

    def test_counts_bounded_by_cores(self):
        workload = scalar_matmul(size=8, num_cores=4)
        results = run(workload, 4)
        assert all(0 <= count <= 4 for count in results.activity)

    def test_average_consistent_with_histogram(self):
        workload = scalar_matmul(size=8, num_cores=2)
        results = run(workload, 2)
        assert 0.0 < results.average_active_cores() <= 2.0

    def test_activity_sums_through_fast_forward(self):
        """Fully-stalled (fast-forwarded) periods land in activity[0]
        and the histogram still sums to the total cycle count."""
        results = run(stream_triad(length=256, num_cores=1), 1,
                      mem_latency=800)
        assert results.activity.get(0, 0) > 0
        assert sum(results.activity.values()) == results.cycles

    def test_activity_sums_through_drain(self):
        """Requests in flight when the last core halts drain at the end;
        those cycles are accounted as zero-active cycles."""
        results = run(stream_triad(length=256, num_cores=2), 2,
                      mem_latency=400)
        halt = max(core.halt_cycle for core in results.cores)
        assert results.cycles > halt  # a drain period existed
        assert sum(results.activity.values()) == results.cycles

    def test_memory_bound_has_more_stall(self):
        """A slower memory raises the fully-stalled fraction."""
        fast = run(stream_triad(length=512, num_cores=2), 2,
                   mem_latency=30)
        slow = run(stream_triad(length=512, num_cores=2), 2,
                   mem_latency=500)
        assert slow.stalled_fraction() > fast.stalled_fraction()

    def test_summary_includes_activity(self):
        workload = scalar_matmul(size=6, num_cores=2)
        results = run(workload, 2)
        assert "avg active cores" in results.summary()

    def test_defaults_safe_without_activity(self):
        from repro.coyote.stats import SimulationResults
        empty = SimulationResults(cycles=0, instructions=0,
                                  wall_seconds=0.0, cores=[],
                                  hierarchy_samples=[], console="",
                                  exit_codes={})
        assert empty.average_active_cores() == 0.0
        assert empty.stalled_fraction() == 0.0
