"""Differential tests: the optimised hot loop vs the reference loop.

The orchestrator keeps the original straight-line per-cycle loop in the
product behind ``use_reference_loop``; these tests run every example
kernel through both loops and assert bit-identical outcomes — cycle
counts, all statistics, per-core breakdowns, and miss traces.  This is
the proof obligation for the incremental active-list, the single-core
run-ahead batch, and the O(1) all-stalled fast-forward.
"""

import hashlib
import json

import pytest

from repro.coyote import Simulation, SimulationConfig
from repro.coyote.cli import make_workload
from repro.kernels import KERNELS

# Tiny-but-representative sizes (mirrors the CLI kernel coverage test).
_SIZE = {
    "scalar-matmul": 6, "vector-matmul": 6,
    "scalar-spmv": 8, "spmv-csr-gather-reduce": 8,
    "spmv-csr-gather-accum": 8, "spmv-ell": 8,
    "spmv-csr-compressed": 8,
    "vector-stencil": 16, "vector-axpy": 16, "stream-triad": 16,
    "vector-dot": 16, "fft-radix2": 8, "nn-dense-relu": 6,
    "mlp-inference": 6, "histogram": 16,
}

# Fields that measure the host or observe the run without steering it
# (the guest profile is checked digest-identical separately below).
_HOST_FIELDS = ("wall_seconds", "host_mips", "host_profile",
                "guest_profile")


def _run(kernel, config_kwargs, reference):
    workload = make_workload(kernel, cores=config_kwargs.pop("cores", 2),
                             size=_SIZE[kernel])
    config = SimulationConfig.for_cores(workload.num_cores,
                                        **config_kwargs)
    simulation = Simulation(config, workload.program)
    simulation.orchestrator.use_reference_loop = reference
    results = simulation.run()
    data = results.to_dict()
    for field in _HOST_FIELDS:
        data.pop(field, None)
    return simulation, data


def _digest(data) -> str:
    return hashlib.sha256(
        json.dumps(data, sort_keys=True, default=str).encode()).hexdigest()


@pytest.mark.parametrize("kernel", sorted(KERNELS), ids=sorted(KERNELS))
def test_loops_identical_on_every_kernel(kernel):
    _sim_ref, ref = _run(kernel, {}, reference=True)
    _sim_fast, fast = _run(kernel, {}, reference=False)
    assert fast == ref
    assert _digest(fast) == _digest(ref)


@pytest.mark.parametrize("l2_mode", ["shared", "private"])
@pytest.mark.parametrize("kernel", ["scalar-matmul", "scalar-spmv"])
def test_loops_identical_across_l2_modes(kernel, l2_mode):
    kwargs = {"cores": 8, "l2_mode": l2_mode}
    _sim_ref, ref = _run(kernel, dict(kwargs), reference=True)
    _sim_fast, fast = _run(kernel, dict(kwargs), reference=False)
    assert fast == ref


def test_loops_identical_with_high_latency_fast_forward():
    # Long all-stalled gaps exercise advance_to and the run-ahead batch.
    kwargs = {"cores": 1, "mem_latency": 2500}
    _sim_ref, ref = _run("scalar-spmv", dict(kwargs), reference=True)
    _sim_fast, fast = _run("scalar-spmv", dict(kwargs), reference=False)
    assert fast == ref
    assert ref["activity"].get("0", 0) > 0  # gaps actually occurred


def _run_profiled(reference):
    from repro.telemetry import TelemetryConfig

    workload = make_workload("scalar-spmv", cores=4,
                             size=_SIZE["scalar-spmv"])
    config = SimulationConfig.for_cores(
        4, telemetry=TelemetryConfig(guest_profile=True))
    simulation = Simulation(config, workload.program)
    simulation.orchestrator.use_reference_loop = reference
    data = simulation.run().to_dict()
    profile = data.pop("guest_profile")
    for field in _HOST_FIELDS:
        data.pop(field, None)
    return data, profile


def test_loops_identical_with_guest_profiling():
    ref, ref_profile = _run_profiled(reference=True)
    fast, fast_profile = _run_profiled(reference=False)
    assert fast == ref
    # Both loops also attribute the profile identically.
    assert fast_profile == ref_profile
    # And profiling observes without steering: the simulated outcome
    # matches an unprofiled run bit for bit.
    _sim, plain = _run("scalar-spmv", {"cores": 4}, reference=False)
    assert fast == plain
    assert _digest(fast) == _digest(plain)


def test_traces_identical():
    def run(reference):
        workload = make_workload("scalar-spmv", cores=4, size=12)
        config = SimulationConfig.for_cores(4, trace_misses=True)
        simulation = Simulation(config, workload.program)
        simulation.orchestrator.use_reference_loop = reference
        simulation.run()
        return simulation.trace.records

    assert run(reference=False) == run(reference=True)
