"""Differential proofs for the contention-aware NoC models.

Three obligations from the interconnect redesign:

* **Baseline preservation** — the default crossbar is untouched: full
  runs stay digest-identical to hex digests captured on the pre-NoC
  tree (any counter added to or removed from the crossbar path would
  change them).
* **Determinism under load** — mesh/torus runs are load-dependent but
  bit-reproducible: repeat runs, checkpoint/resume mid-contention, and
  serial-vs-parallel sweeps all agree digest for digest.
* **Load dependence** — a congested run's mean end-to-end latency
  exceeds the closed-form zero-load hop formula (the idealisation the
  paper's crossbar keeps), proving the contention model actually
  models contention.
"""

import hashlib
import json

import pytest

from repro.coyote import Simulation, SimulationConfig
from repro.coyote.cli import make_workload
from repro.coyote.sweep import Sweep
from repro.kernels import vector_axpy
from repro.resilience import (
    FaultSpec,
    ResilienceConfig,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.introspect import in_network_messages

_HOST_FIELDS = ("wall_seconds", "host_mips", "host_profile",
                "guest_profile")

# sha256 digests of full (host-fields-stripped) results captured on the
# tree *before* the NocConfig redesign: the crossbar fast path must
# keep producing exactly these.
BASELINE_CROSSBAR_DIGESTS = {
    ("scalar-matmul", 4, 6, ()):
        "fddd0e71851824f22d85d8618386200fe31b3269b69a7980e9acad5c872f9c32",
    ("scalar-spmv", 8, 8, ()):
        "ea531f2aceb34ecee03ced42dd5f77300c025c069fd394512b9f6ee1891d9e26",
    ("vector-axpy", 1, 16, ()):
        "85829aeb12aa40efcb519ea874807aeee5f2f887771e8de6bd72d7ed8bcc1df2",
    ("stream-triad", 2, 16, (("l2_mode", "private"),)):
        "e1b3e93a21f09a2091ec137e6782a8e2c48eddc5af5d169b7bc590cd8602fae9",
    ("histogram", 8, 16, (("noc.latency", 2),)):
        "733f859cdf687418375854e60a0ee9e787cc9024a243e278d100dd7036d858d6",
}


def _stats(results):
    data = results.to_dict()
    for field in _HOST_FIELDS:
        data.pop(field, None)
    return data


def _digest(data) -> str:
    return hashlib.sha256(
        json.dumps(data, sort_keys=True, default=str).encode()).hexdigest()


def _run(kernel, cores, size, overrides):
    workload = make_workload(kernel, cores=cores, size=size)
    config = SimulationConfig.for_cores(workload.num_cores,
                                        **dict(overrides))
    return _stats(Simulation(config, workload.program).run())


# The topology x routing matrix (routing is crossbar-irrelevant).
TOPOLOGY_MATRIX = [("crossbar", "xy")] + [
    (kind, routing)
    for kind in ("mesh", "torus")
    for routing in ("xy", "yx", "adaptive")
]


class TestRepeatRunDeterminism:
    @pytest.mark.parametrize("cores", [1, 4, 8])
    @pytest.mark.parametrize("kind,routing", TOPOLOGY_MATRIX,
                             ids=[f"{k}-{r}" for k, r in TOPOLOGY_MATRIX])
    def test_identical_digests_across_repeat_runs(self, kind, routing,
                                                  cores):
        overrides = {"noc.kind": kind, "noc.routing": routing}
        first = _run("vector-axpy", cores, 16, overrides.items())
        second = _run("vector-axpy", cores, 16, overrides.items())
        assert _digest(first) == _digest(second)
        assert first == second


class TestCrossbarBaseline:
    @pytest.mark.parametrize(
        "kernel,cores,size,overrides",
        sorted(BASELINE_CROSSBAR_DIGESTS),
        ids=[kernel for kernel, _c, _s, _o
             in sorted(BASELINE_CROSSBAR_DIGESTS)])
    def test_digest_identical_to_pre_redesign_tree(self, kernel, cores,
                                                   size, overrides):
        expected = BASELINE_CROSSBAR_DIGESTS[(kernel, cores, size,
                                              overrides)]
        assert _digest(_run(kernel, cores, size, overrides)) == expected


class TestLoadDependence:
    def test_congested_mean_latency_exceeds_closed_form(self):
        # A narrow 2-column mesh under an 8-core kernel keeps links
        # busy; the contention model must charge for that.
        stats = _run("scalar-spmv", 8, 8,
                     {"noc.kind": "mesh", "noc.columns": 2}.items())
        hierarchy = stats["hierarchy"]
        delivered = hierarchy["memhier.noc.delivered"]
        hops = hierarchy["memhier.noc.hops"]
        total_latency = hierarchy["memhier.noc.total_latency"]
        assert delivered > 0
        # Closed form summed over the actual messages: every message
        # pays (hops+1) router cycles + hops link cycles at zero load.
        zero_load_total = (hops + delivered) * 1 + hops * 1
        assert total_latency > zero_load_total
        assert hierarchy["memhier.noc.queue_cycles"] \
            == total_latency - zero_load_total

    def test_wider_links_reduce_queueing(self):
        narrow = _run("scalar-spmv", 8, 8,
                      {"noc.kind": "mesh", "noc.columns": 2}.items())
        wide = _run("scalar-spmv", 8, 8,
                    {"noc.kind": "mesh", "noc.columns": 2,
                     "noc.link_capacity": 4}.items())
        assert wide["hierarchy"]["memhier.noc.queue_cycles"] \
            < narrow["hierarchy"]["memhier.noc.queue_cycles"]

    def test_torus_wrap_cuts_hops(self):
        mesh = _run("scalar-spmv", 8, 8,
                    {"noc.kind": "mesh", "noc.columns": 2}.items())
        torus = _run("scalar-spmv", 8, 8,
                     {"noc.kind": "torus", "noc.columns": 2}.items())
        assert torus["hierarchy"]["memhier.noc.hops"] \
            < mesh["hierarchy"]["memhier.noc.hops"]


def _contended_simulation(faults=()):
    workload = make_workload("scalar-spmv", cores=8, size=8)
    overrides = {"noc.kind": "torus", "noc.routing": "adaptive",
                 "noc.columns": 2}
    config = SimulationConfig.for_cores(8, **overrides)
    if faults:
        config.resilience = ResilienceConfig(faults=list(faults),
                                             fault_seed=42)
    return Simulation(config, workload.program), workload


class TestCheckpointMidContention:
    def test_resume_matches_straight_run(self, tmp_path):
        straight, _ = _contended_simulation()
        reference = _stats(straight.run())
        assert reference["hierarchy"]["memhier.noc.queue_cycles"] > 0

        # Find a pause point with traffic physically in the network, so
        # the checkpoint really pickles in-flight link state.
        total = reference["cycles"]
        paused = None
        for fraction in (0.3, 0.4, 0.5, 0.6, 0.7):
            candidate, _ = _contended_simulation()
            assert candidate.run(
                pause_at=max(1, int(total * fraction))) is None
            if in_network_messages(candidate.orchestrator) > 0:
                paused = candidate
                break
        assert paused is not None, "no pause point caught messages " \
                                   "mid-network"

        path = save_checkpoint(paused, tmp_path / "noc.ckpt", {})
        resumed, _metadata = load_checkpoint(path)
        assert _stats(resumed.run()) == reference

    def test_resume_matches_under_link_faults(self, tmp_path):
        faults = (FaultSpec(target="noc", kind="delay", extra=7,
                            start=0, end=10_000, probability=0.2),
                  FaultSpec(target="noc", kind="duplicate",
                            start=0, end=10_000, probability=0.05),)
        straight, workload = _contended_simulation(faults)
        reference = _stats(straight.run())

        paused, _ = _contended_simulation(faults)
        assert paused.run(
            pause_at=max(1, reference["cycles"] // 2)) is None
        path = save_checkpoint(paused, tmp_path / "faulty.ckpt", {})
        resumed, _metadata = load_checkpoint(path)
        results = resumed.run()
        assert _stats(results) == reference
        assert workload.verify(resumed.memory)


class TestSweepDeterminism:
    AXES = {"noc.kind": ["crossbar", "mesh", "torus"],
            "noc.routing": ["xy", "adaptive"]}

    @staticmethod
    def _make_axpy():
        return vector_axpy(length=32, num_cores=2)

    def test_serial_and_parallel_tables_identical(self):
        serial = Sweep(base_cores=2, axes=self.AXES).run(self._make_axpy)
        parallel = Sweep(base_cores=2, axes=self.AXES).run(
            self._make_axpy, workers=2)
        serial_dict = serial.to_dict()
        parallel_dict = parallel.to_dict()
        serial_dict.pop("workers", None)
        parallel_dict.pop("workers", None)
        for table in (serial_dict, parallel_dict):
            for point in table["points"]:
                for field in _HOST_FIELDS:
                    point.get("results", {}).pop(field, None)
        assert _digest(serial_dict) == _digest(parallel_dict)
