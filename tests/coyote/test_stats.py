"""Tests for SimulationResults derived metrics (synthetic data)."""

import pytest

from repro.coyote.stats import CoreStats, SimulationResults
from repro.spike.l1cache import L1Stats
from repro.sparta.statistics import StatSample


def make_core(core_id=0, instructions=100, raw=10, fetch=5,
              l1d_reads=80, l1d_read_misses=8):
    l1d = L1Stats(reads=l1d_reads, writes=20,
                  read_misses=l1d_read_misses, write_misses=2)
    l1i = L1Stats(reads=instructions, read_misses=4)
    return CoreStats(core_id=core_id, instructions=instructions,
                     raw_stall_cycles=raw, fetch_stall_cycles=fetch,
                     halt_cycle=500, exit_code=0, l1i=l1i, l1d=l1d)


def make_results(num_cores=2, cycles=1000, wall=0.5):
    cores = [make_core(core_id=i) for i in range(num_cores)]
    samples = [
        StatSample("memhier.tile0.bank0", "requests", 40),
        StatSample("memhier.tile0.bank1", "requests", 60),
        StatSample("memhier", "requests_submitted", 100),
    ]
    return SimulationResults(
        cycles=cycles, instructions=num_cores * 100, wall_seconds=wall,
        cores=cores, hierarchy_samples=samples, console="",
        exit_codes={i: 0 for i in range(num_cores)})


class TestDerivedMetrics:
    def test_host_mips(self):
        results = make_results(num_cores=2, wall=0.5)
        assert results.host_mips == pytest.approx(200 / 0.5 / 1e6)

    def test_host_mips_zero_wall(self):
        results = make_results(wall=0.0)
        assert results.host_mips == 0.0

    def test_ipc(self):
        results = make_results(num_cores=2, cycles=1000)
        assert results.ipc == pytest.approx(0.2)

    def test_stall_totals(self):
        results = make_results(num_cores=3)
        assert results.raw_stall_cycles == 30
        assert results.fetch_stall_cycles == 15

    def test_l1d_miss_rate(self):
        results = make_results(num_cores=1)
        # (8 + 2) misses / (80 + 20) accesses.
        assert results.l1d_miss_rate() == pytest.approx(0.1)

    def test_l1i_miss_rate(self):
        results = make_results(num_cores=1)
        assert results.l1i_miss_rate() == pytest.approx(4 / 100)

    def test_miss_rates_empty(self):
        results = make_results(num_cores=0)
        assert results.l1d_miss_rate() == 0.0
        assert results.l1i_miss_rate() == 0.0


class TestLookups:
    def test_hierarchy_value(self):
        results = make_results()
        assert results.hierarchy_value(
            "memhier.requests_submitted") == 100

    def test_hierarchy_value_missing(self):
        results = make_results()
        with pytest.raises(KeyError):
            results.hierarchy_value("memhier.nope")

    def test_bank_utilisation(self):
        results = make_results()
        assert results.bank_utilisation() == {"bank0": 40, "bank1": 60}

    def test_succeeded(self):
        results = make_results(num_cores=2)
        assert results.succeeded()
        results.exit_codes[1] = 3
        assert not results.succeeded()

    def test_succeeded_requires_all_cores(self):
        results = make_results(num_cores=2)
        del results.exit_codes[1]
        assert not results.succeeded()


class TestL1Stats:
    def test_properties(self):
        stats = L1Stats(reads=10, writes=5, read_misses=2,
                        write_misses=1)
        assert stats.accesses == 15
        assert stats.misses == 3
        assert stats.miss_rate == pytest.approx(0.2)

    def test_miss_rate_no_accesses(self):
        assert L1Stats().miss_rate == 0.0
