"""CLI coverage: every registered kernel must run (small sizes)."""

import pytest

from repro.coyote.cli import main as cli_main, make_workload
from repro.kernels import KERNELS

_SIZE = {
    "scalar-matmul": 6, "vector-matmul": 6,
    "scalar-spmv": 8, "spmv-csr-gather-reduce": 8,
    "spmv-csr-gather-accum": 8, "spmv-ell": 8,
    "spmv-csr-compressed": 8,
    "vector-stencil": 16, "vector-axpy": 16, "stream-triad": 16,
    "vector-dot": 16, "fft-radix2": 8, "nn-dense-relu": 6,
    "mlp-inference": 6, "histogram": 16,
}


def test_size_table_covers_all_kernels():
    assert set(_SIZE) == set(KERNELS)


@pytest.mark.parametrize("kernel", sorted(KERNELS), ids=sorted(KERNELS))
def test_cli_runs_every_kernel(kernel, capsys):
    exit_code = cli_main(["--kernel", kernel, "--cores", "2",
                          "--size", str(_SIZE[kernel])])
    captured = capsys.readouterr()
    assert exit_code == 0, captured.out
    assert "output verified      : True" in captured.out


@pytest.mark.parametrize("kernel", sorted(KERNELS), ids=sorted(KERNELS))
def test_make_workload_default_sizes(kernel):
    workload = make_workload(kernel, cores=2, size=None)
    assert workload.num_cores == 2
