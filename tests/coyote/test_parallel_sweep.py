"""The parallel sweep engine: determinism, crash isolation, warm-start.

The headline guarantee under test: a ``workers=N`` campaign produces a
table bit-identical to the ``workers=1`` reference — same settings
order, same metrics, same failure records — even when the campaign
contains a deliberately deadlocking point running under
``on_error="skip"``.
"""

import os

import pytest

from repro.coyote.parallel import (
    ParallelSweep,
    RemoteError,
    WorkerCrash,
    axes_key,
    settings_key,
)
from repro.coyote.sweep import Sweep
from repro.kernels import scalar_matmul, vector_axpy
from repro.resilience import CheckpointError, FaultSpec, ResilienceConfig

DIFFERENTIAL_METRICS = ("cycles", "instructions", "l1d_miss_rate",
                        "raw_stall_cycles")

# Dropping L2-bank responses destroys some core's completion: the point
# provably wedges and the watchdog converts it into a DeadlockError.
WEDGED = ResilienceConfig(
    faults=[FaultSpec(target="l2bank", kind="drop", start=300, end=500,
                      probability=0.5)],
    fault_seed=42, watchdog_cycles=2000)
HEALTHY = ResilienceConfig()


def make_matmul():
    return scalar_matmul(size=6, num_cores=2)


def make_axpy():
    return vector_axpy(length=32, num_cores=2)


def crashing_factory(settings):
    """Settings-aware factory: hard-kills the worker for one point."""
    if settings.get("noc.latency") == 7:
        os._exit(9)
    return scalar_matmul(size=6, num_cores=2)


class TestDifferential:
    def test_parallel_table_bit_identical_with_deadlocking_point(self):
        # 2 axes, 4 points, two of which wedge and trip the watchdog.
        sweep = Sweep(base_cores=2,
                      axes={"resilience": [HEALTHY, WEDGED],
                            "noc.latency": [2, 6]})
        serial = sweep.run(make_matmul, workers=1, on_error="skip")
        fanned = sweep.run(make_matmul, workers=4, on_error="skip")
        assert serial.to_dict(DIFFERENTIAL_METRICS) \
            == fanned.to_dict(DIFFERENTIAL_METRICS)
        kinds = [point.error_kind for point in fanned.points]
        assert kinds.count("DeadlockError") == 2
        assert fanned.workers == 4 and serial.workers == 1

    def test_all_healthy_differential(self):
        sweep = Sweep(base_cores=2, axes={"l2_mode": ["shared", "private"],
                                          "noc.latency": [2, 6]})
        serial = sweep.run(make_axpy, workers=1)
        fanned = sweep.run(make_axpy, workers=2)
        assert serial.to_dict(DIFFERENTIAL_METRICS) \
            == fanned.to_dict(DIFFERENTIAL_METRICS)

    def test_points_stay_in_axis_order(self):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [6, 2, 4]})
        table = sweep.run(make_axpy, workers=3)
        assert [point.settings["noc.latency"]
                for point in table.points] == [6, 2, 4]


class TestCrashIsolation:
    def test_dead_worker_becomes_failed_point(self):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [2, 7, 6]})
        table = sweep.run(crashing_factory, workers=2, on_error="skip")
        assert [point.failed for point in table.points] \
            == [False, True, False]
        crashed = table.points[1]
        assert crashed.error_kind == "WorkerCrash"
        assert "exit code 9" in str(crashed.error)
        assert crashed.results is None
        assert table.points[0].results is not None
        assert table.points[2].results is not None

    def test_crash_with_on_error_raise_aborts(self):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [7]})
        with pytest.raises(WorkerCrash):
            sweep.run(crashing_factory, workers=2, on_error="raise")

    def test_remote_error_preserves_kind_across_pickle(self):
        import pickle
        error = RemoteError("DeadlockError", "wedged at cycle 4242")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.kind == "DeadlockError"
        assert str(clone) == "wedged at cycle 4242"


class TestValidation:
    def test_workers_must_be_positive(self):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [2]})
        with pytest.raises(ValueError, match="workers"):
            ParallelSweep(sweep, workers=0)

    def test_on_error_still_validated(self):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [2]})
        with pytest.raises(ValueError, match="on_error"):
            sweep.run(make_axpy, on_error="ignore", workers=2)


def _counting_factory(settings):
    """Raise if ever called — warm-started campaigns must not call it."""
    raise AssertionError("factory called despite a complete campaign")


class TestCampaignWarmStart:
    AXES = {"l2_mode": ["shared", "private"], "noc.latency": [2, 6]}

    def test_restart_skips_completed_points(self, tmp_path):
        campaign = tmp_path / "axpy.campaign"
        sweep = Sweep(base_cores=2, axes=dict(self.AXES))
        first = sweep.run(make_axpy, workers=2, on_error="skip",
                          campaign_path=campaign)
        assert campaign.exists()
        # Every point is on disk: the rerun must not simulate anything,
        # so a factory that always raises proves the warm start.
        second = sweep.run(_counting_factory, workers=2, on_error="skip",
                           campaign_path=campaign)
        assert first.to_dict(DIFFERENTIAL_METRICS) \
            == second.to_dict(DIFFERENTIAL_METRICS)

    def test_interrupted_campaign_resumes_bit_identical(self, tmp_path):
        # Simulate ctrl-C landing mid-campaign: the factory interrupts
        # after two points; the partial campaign must survive and a
        # warm restart (with a different worker count, even) must
        # produce the uninterrupted reference table bit for bit.
        campaign = tmp_path / "axpy.campaign"
        calls = {"count": 0}

        def interrupting_factory(settings):
            if calls["count"] == 2:
                raise KeyboardInterrupt
            calls["count"] += 1
            return make_axpy()

        sweep = Sweep(base_cores=2, axes=dict(self.AXES))
        with pytest.raises(KeyboardInterrupt):
            sweep.run(interrupting_factory, workers=1, on_error="skip",
                      campaign_path=campaign)
        from repro.resilience import load_campaign
        assert len(load_campaign(campaign, axes_key(self.AXES))) == 2
        resumed = sweep.run(make_axpy, workers=2, on_error="skip",
                            campaign_path=campaign)
        reference = Sweep(base_cores=2, axes=dict(self.AXES)).run(
            make_axpy, workers=1)
        assert resumed.to_dict(DIFFERENTIAL_METRICS) \
            == reference.to_dict(DIFFERENTIAL_METRICS)

    def test_campaign_refuses_mismatched_axes(self, tmp_path):
        campaign = tmp_path / "axpy.campaign"
        Sweep(base_cores=2, axes=dict(self.AXES)).run(
            make_axpy, workers=1, campaign_path=campaign)
        other = Sweep(base_cores=2, axes={"noc.latency": [3, 9]})
        with pytest.raises(CheckpointError, match="different sweep"):
            other.run(make_axpy, workers=1, campaign_path=campaign)

    def test_keys_are_canonical(self):
        assert settings_key({"a": 1, "b": "x"}) == (("a", 1), ("b", "x"))
        assert axes_key({"a": [HEALTHY]}) \
            == axes_key({"a": [ResilienceConfig()]})


class TestSweepCli:
    def test_end_to_end_with_json_out(self, tmp_path, capsys):
        import json

        from repro.coyote import cli
        out = tmp_path / "table.json"
        code = cli.main(["sweep", "--kernel", "scalar-matmul",
                         "--cores", "2", "--size", "6",
                         "--axes", "noc.latency=2,6",
                         "--best", "cycles", "--out", str(out)])
        assert code == cli.EXIT_OK
        stdout = capsys.readouterr().out
        assert "noc.latency" in stdout and "best cycles" in stdout
        document = json.loads(out.read_text())
        assert len(document["points"]) == 2
        assert document["aggregate"]["failed"] == 0

    @pytest.mark.parametrize("spec", ["bad==x", "noc.latency=2,,6",
                                      "=2,6", "noc.latency"])
    def test_malformed_axes_are_config_errors(self, spec, capsys):
        from repro.coyote import cli
        code = cli.main(["sweep", "--kernel", "scalar-matmul",
                         "--axes", spec])
        assert code == cli.EXIT_CONFIG
        assert "bad axis" in capsys.readouterr().err

    def test_axis_tokens_are_typed(self):
        from repro.coyote.cli import parse_axes
        axes = parse_axes(["mix=2,2.5,true,shared"])
        assert axes["mix"] == [2, 2.5, True, "shared"]


class TestTableMetadata:
    def test_wall_seconds_and_workers_recorded(self):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [2]})
        table = sweep.run(make_axpy, workers=2)
        assert table.workers == 2
        assert table.wall_seconds > 0

    def test_aggregate_rolls_up_metrics(self):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [2, 6]})
        table = sweep.run(make_axpy, workers=2)
        aggregate = table.aggregate(("cycles",))
        assert aggregate["points"] == 2
        assert aggregate["succeeded"] == 2
        assert aggregate["failed"] == 0
        stats = aggregate["metrics"]["cycles"]
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert stats["total"] == sum(point.metric("cycles")
                                     for point in table.points)

    def test_host_facts_stay_out_of_canonical_dict(self):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [2]})
        table = sweep.run(make_axpy, workers=2)
        document = table.to_dict(("cycles",))
        assert set(document) == {"axes", "points"}
