"""Differential proof for the trace-compiled ISS fast path.

``SimulationConfig.translate`` switches the Spike-side block translator
on (the default) or off; these tests run the same workloads both ways
and assert bit-identical simulated outcomes — every statistic, per-core
breakdown, activity histogram and exit code — across kernels, core
counts, guest profiling, injected faults, and checkpoint/resume.  They
also pin down the code-cache invalidation story at the orchestrator
level: a program that patches its own instruction stream must execute
the patched code with translation on exactly as it does with the plain
interpreter.
"""

import hashlib
import json

import pytest

from repro.coyote import Simulation, SimulationConfig
from repro.coyote.cli import make_workload
from repro.coyote.orchestrator import Orchestrator
from repro.assembler import assemble
from repro.kernels import KERNELS
from repro.resilience import (
    FaultSpec,
    ResilienceConfig,
    restore_simulation,
    save_checkpoint,
)
from repro.telemetry import TelemetryConfig

# Tiny-but-representative sizes (mirrors test_differential.py).
_SIZE = {
    "scalar-matmul": 6, "vector-matmul": 6,
    "scalar-spmv": 8, "spmv-csr-gather-reduce": 8,
    "spmv-csr-gather-accum": 8, "spmv-ell": 8,
    "spmv-csr-compressed": 8,
    "vector-stencil": 16, "vector-axpy": 16, "stream-triad": 16,
    "vector-dot": 16, "fft-radix2": 8, "nn-dense-relu": 6,
    "mlp-inference": 6, "histogram": 16,
}

_HOST_FIELDS = ("wall_seconds", "host_mips", "host_profile",
                "guest_profile")


def _stats(results):
    data = results.to_dict()
    for field in _HOST_FIELDS:
        data.pop(field, None)
    return data


def _digest(data) -> str:
    return hashlib.sha256(
        json.dumps(data, sort_keys=True, default=str).encode()).hexdigest()


def _run(kernel, cores, translate, **config_kwargs):
    workload = make_workload(kernel, cores=cores, size=_SIZE[kernel])
    config = SimulationConfig.for_cores(workload.num_cores,
                                        translate=translate,
                                        **config_kwargs)
    simulation = Simulation(config, workload.program)
    return simulation, simulation.run()


@pytest.mark.parametrize("kernel", sorted(KERNELS), ids=sorted(KERNELS))
def test_translated_matches_interpreter_on_every_kernel(kernel):
    _sim, interp = _run(kernel, 2, translate=False)
    _sim, translated = _run(kernel, 2, translate=True)
    assert _stats(translated) == _stats(interp)
    assert _digest(_stats(translated)) == _digest(_stats(interp))


@pytest.mark.parametrize("cores", [1, 4, 8])
@pytest.mark.parametrize("kernel", ["scalar-matmul", "fft-radix2"])
def test_translated_matches_interpreter_across_core_counts(kernel, cores):
    _sim, interp = _run(kernel, cores, translate=False)
    _sim, translated = _run(kernel, cores, translate=True)
    assert _stats(translated) == _stats(interp)


@pytest.mark.parametrize("kernel", ["scalar-matmul", "histogram"])
def test_translated_matches_interpreter_with_guest_profile(kernel):
    telemetry = TelemetryConfig(guest_profile=True)
    _sim, interp = _run(kernel, 4, translate=False, telemetry=telemetry)
    _sim, translated = _run(kernel, 4, translate=True,
                            telemetry=telemetry)
    interp_data = interp.to_dict()
    translated_data = translated.to_dict()
    # The per-PC retire counts and stall attribution must be exact
    # under block dispatch, not merely the aggregate statistics.
    assert translated_data["guest_profile"] == interp_data["guest_profile"]
    assert _stats(translated) == _stats(interp)


def test_translated_matches_interpreter_under_faults():
    resilience = ResilienceConfig(
        faults=[FaultSpec(target="l2bank", kind="delay", extra=7,
                          jitter=12, probability=0.5),
                FaultSpec(target="noc", kind="duplicate", extra=3,
                          start=50, end=5000)],
        fault_seed=1234)
    _sim, interp = _run("scalar-spmv", 4, translate=False,
                        resilience=resilience)
    _sim, translated = _run("scalar-spmv", 4, translate=True,
                            resilience=resilience)
    assert _stats(translated) == _stats(interp)


class TestCheckpointResume:
    """Checkpoint hygiene: translated closures must never leak into a
    pickle, and a resumed translated run (including one paused midway
    through a multi-instruction block, where the hart carries a
    ``_resume_at`` budget) must match an uninterrupted one bit for
    bit."""

    @pytest.mark.parametrize("fraction", [0.3, 0.7])
    def test_resume_translated_matches_straight_run(self, tmp_path,
                                                    fraction):
        straight, reference = _run("scalar-matmul", 4, translate=True)
        # An odd pause cycle lands inside multi-instruction blocks
        # often enough to exercise the mid-block pause/resume path.
        pause_at = max(1, int(reference.cycles * fraction)) | 1

        workload = make_workload("scalar-matmul", cores=4,
                                 size=_SIZE["scalar-matmul"])
        config = SimulationConfig.for_cores(4, translate=True)
        paused = Simulation(config, workload.program)
        assert paused.run(pause_at=pause_at) is None
        assert paused.paused
        path = save_checkpoint(paused, tmp_path / "translated.ckpt")
        resumed = restore_simulation(path)
        results = resumed.run()

        assert _stats(results) == _stats(reference)
        assert _digest(_stats(results)) == _digest(_stats(reference))
        assert workload.verify(resumed.memory)

    def test_resume_translated_matches_interpreter(self, tmp_path):
        _sim, interp = _run("scalar-matmul", 4, translate=False)
        pause_at = max(1, interp.cycles // 2) | 1

        workload = make_workload("scalar-matmul", cores=4,
                                 size=_SIZE["scalar-matmul"])
        config = SimulationConfig.for_cores(4, translate=True)
        paused = Simulation(config, workload.program)
        assert paused.run(pause_at=pause_at) is None
        path = save_checkpoint(paused, tmp_path / "cross.ckpt")
        results = restore_simulation(path).run()
        assert _stats(results) == _stats(interp)


# A second pass through 'site' must execute the patched instruction
# (addi a0, zero, 99) even though the first pass decoded — and, with
# translation on, compiled — the original (addi a0, zero, 1).  The
# exit code carries a0 out: 99 proves the stale code cache was
# invalidated by the store.
_SMC_SOURCE = """.text
_start:
    la   t0, site
    j    site            # warm the decode and translation caches
back:
    li   t1, 0x06300513  # addi a0, zero, 99
    sw   t1, 0(t0)
    j    site
site:
    addi a0, zero, 1
    beq  a0, a0, cont    # always taken
cont:
    addi a2, a2, 1
    li   t2, 2
    bltu a2, t2, back
    slli a0, a0, 1       # tohost exit value: (code << 1) | 1
    ori  a0, a0, 1
    la   t6, tohost
    sd   a0, 0(t6)
halt:
    j    halt
.data
.align 3
tohost: .dword 0
"""


class TestSelfModifyingCode:
    """Orchestrator-level SMC regression: the stale-code-cache bug
    (decode cache only dropped on ``fence.i``) would make this program
    exit 1 instead of 99 — and the translated fast path would cache the
    stale block even harder.  Both execution modes must see the patch.
    """

    @pytest.mark.parametrize("translate", [True, False],
                             ids=["translated", "interpreter"])
    def test_store_into_code_takes_effect(self, translate):
        config = SimulationConfig.for_cores(1, translate=translate)
        orchestrator = Orchestrator(config, assemble(_SMC_SOURCE))
        results = orchestrator.run()
        assert results.exit_codes == {0: 99}

    def test_smc_outcome_identical_across_modes(self):
        outcomes = []
        for translate in (True, False):
            config = SimulationConfig.for_cores(1, translate=translate)
            orchestrator = Orchestrator(config, assemble(_SMC_SOURCE))
            outcomes.append(_stats(orchestrator.run()))
        assert outcomes[0] == outcomes[1]

    def test_smc_multicore_translated(self):
        # Every core patches its own copy of the loop; all must see it.
        config = SimulationConfig.for_cores(2, translate=True)
        orchestrator = Orchestrator(config, assemble(_SMC_SOURCE))
        results = orchestrator.run()
        assert results.exit_codes == {0: 99, 1: 99}
