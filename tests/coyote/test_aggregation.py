"""Tests for the MCPU-style vector-request aggregation extension."""

import pytest

from repro.coyote import Simulation, SimulationConfig
from repro.kernels import spmv_csr_gather_accum, stream_triad
from repro.memhier.hierarchy import MemHierConfig, MemoryHierarchy
from repro.memhier.request import RequestKind
from repro.sparta.scheduler import Scheduler

VLEN = 2048  # 32 doubles -> several lines per vector memory op


def run_pair(workload_factory):
    """Run the same workload with aggregation off and on."""
    results = {}
    for aggregation in (False, True):
        config = SimulationConfig.for_cores(
            4, vlen_bits=VLEN, mcpu_aggregation=aggregation)
        workload = workload_factory()
        simulation = Simulation(config, workload.program)
        run = simulation.run()
        assert run.succeeded()
        assert workload.verify(simulation.memory)
        results[aggregation] = run
    return results


class TestFunctionalEquivalence:
    def test_triad_same_answer(self):
        run_pair(lambda: stream_triad(length=512, num_cores=4))

    def test_gather_same_answer(self):
        run_pair(lambda: spmv_csr_gather_accum(num_rows=32,
                                               nnz_per_row=8,
                                               num_cores=4))

    def test_instruction_counts_identical(self):
        results = run_pair(lambda: stream_triad(length=512, num_cores=4))
        assert results[False].instructions == results[True].instructions


class TestTrafficReduction:
    def test_noc_messages_drop(self):
        results = run_pair(lambda: stream_triad(length=1024,
                                                num_cores=4))
        baseline = results[False].hierarchy_value("memhier.noc.messages")
        aggregated = results[True].hierarchy_value(
            "memhier.noc.messages")
        assert aggregated < baseline

    def test_aggregated_counter_increments(self):
        results = run_pair(lambda: stream_triad(length=1024,
                                                num_cores=4))
        assert results[True].hierarchy_value(
            "memhier.aggregated_requests") > 0
        assert results[False].hierarchy_value(
            "memhier.aggregated_requests") == 0


class TestHierarchyApi:
    def make(self, aggregation=True):
        config = MemHierConfig(mcpu_aggregation=aggregation)
        scheduler = Scheduler()
        hierarchy = MemoryHierarchy(config, scheduler)
        completed = []
        hierarchy.on_complete = completed.append
        return hierarchy, scheduler, completed

    def test_single_response_for_group(self):
        hierarchy, scheduler, completed = self.make()
        lines = [0x1000, 0x1040, 0x1080]
        request = hierarchy.submit_aggregate((10, 11, 12), 0, lines,
                                             RequestKind.LOAD)
        scheduler.run_until_idle()
        assert completed == [request]
        assert completed[0].member_ids == (10, 11, 12)

    def test_group_latency_scales_with_lines(self):
        hierarchy1, scheduler1, completed1 = self.make()
        hierarchy1.submit_aggregate((1,) + (2,), 0, [0x1000, 0x1040],
                                    RequestKind.LOAD)
        scheduler1.run_until_idle()
        hierarchy8, scheduler8, completed8 = self.make()
        hierarchy8.submit_aggregate(tuple(range(8)), 0,
                                    [0x1000 + 64 * i for i in range(8)],
                                    RequestKind.LOAD)
        scheduler8.run_until_idle()
        assert completed8[0].latency > completed1[0].latency

    def test_disabled_raises(self):
        hierarchy, _scheduler, _completed = self.make(aggregation=False)
        with pytest.raises(RuntimeError):
            hierarchy.submit_aggregate((1,), 0, [0x1000],
                                       RequestKind.LOAD)

    def test_mismatched_inputs_rejected(self):
        hierarchy, _scheduler, _completed = self.make()
        with pytest.raises(ValueError):
            hierarchy.submit_aggregate((1, 2), 0, [0x1000],
                                       RequestKind.LOAD)
        with pytest.raises(ValueError):
            hierarchy.submit_aggregate((), 0, [], RequestKind.LOAD)
