"""Scale smoke tests: the paper's headline core counts must work."""

import pytest

from repro.coyote import Simulation, SimulationConfig
from repro.kernels import scalar_spmv, vector_axpy


class TestLargeCoreCounts:
    def test_64_cores(self):
        workload = vector_axpy(length=256, num_cores=64)
        simulation = Simulation(SimulationConfig.for_cores(64),
                                workload.program)
        results = simulation.run()
        assert results.succeeded()
        assert workload.verify(simulation.memory)
        assert len(results.cores) == 64

    def test_128_cores(self):
        """The paper's maximum: 128 cores, 16 tiles."""
        workload = scalar_spmv(num_rows=256, nnz_per_row=2,
                               num_cores=128)
        config = SimulationConfig.for_cores(128)
        assert config.memhier.num_tiles == 16
        assert config.memhier.num_banks == 32
        simulation = Simulation(config, workload.program)
        results = simulation.run()
        assert results.succeeded()
        assert workload.verify(simulation.memory)
        # Every core executed its boot + slice.
        assert all(core.instructions > 0 for core in results.cores)

    def test_128_core_bank_spread(self):
        """With set-interleaving over 32 banks, a many-core SpMV must
        touch most banks."""
        workload = scalar_spmv(num_rows=256, nnz_per_row=2,
                               num_cores=128)
        simulation = Simulation(SimulationConfig.for_cores(128),
                                workload.program)
        results = simulation.run()
        utilisation = results.bank_utilisation()
        active_banks = sum(1 for count in utilisation.values()
                           if count > 0)
        assert active_banks >= 24
