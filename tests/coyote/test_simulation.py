"""Tests for the Simulation facade and CLI."""

from pathlib import Path

import pytest

from repro.coyote import Simulation, SimulationConfig, SimulationError
from repro.coyote.cli import main as cli_main
from repro.kernels import scalar_matmul, vector_axpy


class TestSimulationFacade:
    def test_run_returns_results(self):
        workload = vector_axpy(length=32, num_cores=2)
        simulation = Simulation(SimulationConfig.for_cores(2),
                                workload.program)
        results = simulation.run()
        assert results.succeeded()
        assert workload.verify(simulation.memory)

    def test_run_is_idempotent(self):
        workload = vector_axpy(length=32, num_cores=1)
        simulation = Simulation(SimulationConfig.for_cores(1),
                                workload.program)
        first = simulation.run()
        second = simulation.run()
        assert first is second

    def test_results_before_run_raises(self):
        workload = vector_axpy(length=32, num_cores=1)
        simulation = Simulation(SimulationConfig.for_cores(1),
                                workload.program)
        with pytest.raises(SimulationError):
            _ = simulation.results

    def test_trace_requires_enabling(self):
        workload = vector_axpy(length=32, num_cores=1)
        simulation = Simulation(SimulationConfig.for_cores(1),
                                workload.program)
        simulation.run()
        with pytest.raises(SimulationError):
            simulation.write_trace("/tmp/nope")

    def test_trace_writes_files(self, tmp_path):
        workload = vector_axpy(length=32, num_cores=1)
        config = SimulationConfig.for_cores(1, trace_misses=True)
        simulation = Simulation(config, workload.program)
        simulation.run()
        prv, pcf = simulation.write_trace(tmp_path / "trace")
        assert Path(prv).exists() and Path(pcf).exists()
        assert len(simulation.trace.records) > 0

    def test_summary_renders(self):
        workload = scalar_matmul(size=4, num_cores=1)
        simulation = Simulation(SimulationConfig.for_cores(1),
                                workload.program)
        results = simulation.run()
        summary = results.summary()
        assert "cycles" in summary and "MIPS" in summary
        assert "exit codes" in summary

    def test_hierarchy_report_renders(self):
        workload = scalar_matmul(size=4, num_cores=1)
        simulation = Simulation(SimulationConfig.for_cores(1),
                                workload.program)
        results = simulation.run()
        report = results.hierarchy_report()
        assert "bank0" in report


class TestCli:
    def test_cli_runs_kernel(self, capsys):
        exit_code = cli_main(["--kernel", "vector-axpy", "--cores", "2",
                              "--size", "32"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "output verified      : True" in captured.out

    def test_cli_hierarchy_stats(self, capsys):
        exit_code = cli_main(["--kernel", "vector-axpy", "--cores", "1",
                              "--size", "16", "--hierarchy-stats"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "modelled hierarchy" in captured.out

    def test_cli_trace(self, tmp_path, capsys):
        base = str(tmp_path / "trace")
        exit_code = cli_main(["--kernel", "vector-axpy", "--cores", "1",
                              "--size", "16", "--trace", base])
        assert exit_code == 0
        assert (tmp_path / "trace.prv").exists()

    def test_cli_config_flags(self, capsys):
        exit_code = cli_main(["--kernel", "scalar-spmv", "--cores", "8",
                              "--size", "32", "--l2-mode", "private",
                              "--mapping", "page-to-bank",
                              "--noc-topology", "mesh"])
        assert exit_code == 0
