"""Tests for configuration serialisation and the CLI config flags."""

import json

import pytest

from repro.coyote.cli import main as cli_main
from repro.coyote.config import SimulationConfig


class TestSerialisation:
    def test_round_trip(self):
        config = SimulationConfig.for_cores(
            16, l2_mode="private", mapping_policy="page-to-bank",
            vlen_bits=1024, l3_enable=True, **{"noc.kind": "mesh"})
        rebuilt = SimulationConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_round_trip_torus(self):
        config = SimulationConfig.for_cores(
            16, **{"noc.kind": "torus", "noc.routing": "adaptive",
                   "noc.link_capacity": 2, "noc.columns": 2})
        rebuilt = SimulationConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.noc.wrap

    def test_save_load(self, tmp_path):
        config = SimulationConfig.for_cores(8, mem_latency=250)
        path = config.save(tmp_path / "config.json")
        loaded = SimulationConfig.load(path)
        assert loaded == config
        assert loaded.memhier.mem_latency == 250

    def test_file_is_readable_json(self, tmp_path):
        config = SimulationConfig.for_cores(4)
        path = config.save(tmp_path / "config.json")
        data = json.loads(path.read_text())
        assert data["memhier"]["cores_per_tile"] == 4

    def test_unknown_key_rejected(self):
        data = SimulationConfig.for_cores(1).to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError):
            SimulationConfig.from_dict(data)

    def test_invalid_values_rejected_on_load(self):
        data = SimulationConfig.for_cores(1).to_dict()
        data["vlen_bits"] = 100
        with pytest.raises(ValueError):
            SimulationConfig.from_dict(data)


class TestCliConfigFlags:
    def test_save_then_load(self, tmp_path, capsys):
        path = str(tmp_path / "c.json")
        assert cli_main(["--kernel", "vector-axpy", "--cores", "2",
                         "--size", "16", "--save-config", path]) == 0
        assert cli_main(["--kernel", "vector-axpy", "--size", "16",
                         "--config", path]) == 0
        out = capsys.readouterr().out
        assert "cores                : 2" in out

    def test_config_file_wins_over_flags(self, tmp_path, capsys):
        path = str(tmp_path / "c.json")
        SimulationConfig.for_cores(4).save(path)
        assert cli_main(["--kernel", "vector-axpy", "--size", "16",
                         "--cores", "8", "--config", path]) == 0
        out = capsys.readouterr().out
        assert "cores                : 4" in out
