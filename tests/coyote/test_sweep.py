"""Tests for the design-space sweep utility."""

import pytest

from repro.coyote.sweep import Sweep
from repro.kernels import vector_axpy


def make_workload():
    return vector_axpy(length=32, num_cores=2)


class TestSweep:
    def test_cartesian_points(self):
        sweep = Sweep(base_cores=2,
                      axes={"l2_mode": ["shared", "private"],
                            "noc.latency": [2, 6]})
        table = sweep.run(make_workload)
        assert len(table.points) == 4
        settings = [tuple(point.settings.values())
                    for point in table.points]
        assert len(set(settings)) == 4

    def test_points_verified(self):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [2, 12]})
        table = sweep.run(make_workload)
        assert all(point.verified for point in table.points)

    def test_best_minimises_cycles(self):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [2, 24]})
        table = sweep.run(make_workload)
        assert table.best("cycles").settings["noc.latency"] == 2

    def test_best_maximises_when_asked(self):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [2, 24]})
        table = sweep.run(make_workload)
        best = table.best("cycles", minimise=False)
        assert best.settings["noc.latency"] == 24

    def test_metric_resolves_methods(self):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [6]})
        table = sweep.run(make_workload)
        assert 0.0 <= table.points[0].metric("l1d_miss_rate") <= 1.0

    def test_text_table(self):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [2, 6]})
        table = sweep.run(make_workload)
        text = table.to_text(metrics=("cycles", "l1d_miss_rate"))
        assert "noc.latency" in text and "cycles" in text
        assert len(text.splitlines()) == 4  # header + rule + 2 rows

    def test_base_overrides_apply(self):
        sweep = Sweep(base_cores=2, axes={"noc.latency": [6]},
                      mem_latency=200)
        table = sweep.run(make_workload)
        slow = table.points[0].results.cycles
        fast = Sweep(base_cores=2, axes={"noc.latency": [6]},
                     mem_latency=50).run(make_workload).points[0] \
            .results.cycles
        assert slow > fast

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            Sweep(base_cores=2, axes={})

    def test_empty_table_best_rejected(self):
        from repro.coyote.sweep import SweepTable
        with pytest.raises(ValueError):
            SweepTable(axes={}).best()


class TestMetricSemantics:
    """A metric exists whenever results exist — even on flagged points."""

    def test_verification_failure_keeps_metrics(self):
        from repro.coyote.errors import SimulationError
        from repro.coyote.sweep import SweepPoint
        healthy = Sweep(base_cores=2, axes={"noc.latency": [6]}) \
            .run(make_workload).points[0]
        flagged = SweepPoint(settings=dict(healthy.settings),
                             results=healthy.results, verified=False,
                             error=SimulationError("verification failed"))
        assert flagged.failed
        assert flagged.metric("cycles") == healthy.metric("cycles")

    def test_resultless_point_raises_sweep_error(self):
        from repro.coyote.sweep import SweepError, SweepPoint
        point = SweepPoint(settings={"noc.latency": 6}, results=None,
                           verified=False, error=RuntimeError("boom"))
        with pytest.raises(SweepError, match="failed before producing"):
            point.metric("cycles")

    def test_sweep_error_is_a_value_error(self):
        from repro.coyote.sweep import SweepError
        assert issubclass(SweepError, ValueError)
