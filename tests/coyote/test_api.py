"""The ``repro.api`` facade: one front door, stable re-exports.

Covers the docs/API.md quickstart verbatim, the ConfigBuilder, replay,
the package re-export identities (old import paths keep working), and
the ``check_api`` CI lint passing against the live tree.
"""

import pytest

import repro.api as api
import repro.coyote
import repro.resilience
from repro.api import (
    ConfigBuilder,
    RunOutcome,
    SimulationConfig,
    run,
    save_checkpoint,
    sweep,
)
from repro.kernels import instantiate, scalar_matmul
from repro.tools.check_api import check


class TestRun:
    def test_quickstart_scalar_matmul(self):
        outcome = run("scalar-matmul", cores=4, size=8)
        assert isinstance(outcome, RunOutcome)
        assert outcome.verified is True
        assert outcome.results.succeeded()
        assert outcome.succeeded
        assert outcome.results.cycles > 0

    def test_accepts_workload_object_and_factory(self):
        by_name = run("scalar-matmul", cores=2, size=6)
        by_object = run(scalar_matmul(size=6, num_cores=2), cores=2)
        by_factory = run(lambda: scalar_matmul(size=6, num_cores=2),
                         cores=2)
        assert by_name.results.cycles == by_object.results.cycles \
            == by_factory.results.cycles

    def test_overrides_flow_into_config(self):
        fast = run("vector-axpy", cores=2, size=64,
                   **{"noc.latency": 2})
        slow = run("vector-axpy", cores=2, size=64,
                   **{"noc.latency": 12})
        assert slow.results.cycles > fast.results.cycles

    def test_config_and_overrides_are_exclusive(self):
        config = SimulationConfig.for_cores(2)
        with pytest.raises(ValueError, match="not both"):
            run("scalar-matmul", cores=2, size=6, config=config,
                **{"noc.latency": 4})

    def test_unknown_kernel_names_the_choices(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            run("no-such-kernel", cores=2, size=6)


class TestSweepFacade:
    def test_sweep_matches_direct_run(self):
        table = sweep("scalar-matmul", cores=2, size=6,
                      axes={"noc.latency": [2, 6]})
        assert len(table.points) == 2
        direct = run("scalar-matmul", cores=2, size=6,
                     **{"noc.latency": 2})
        assert table.points[0].metric("cycles") \
            == direct.results.cycles

    def test_sweep_with_workers(self):
        table = sweep("scalar-matmul", cores=2, size=6,
                      axes={"noc.latency": [2, 6]}, workers=2)
        assert [point.failed for point in table.points] == [False, False]
        assert table.workers == 2


class TestReplay:
    def test_replay_verifies_via_metadata(self, tmp_path):
        paused = run("scalar-matmul", cores=2, size=6, pause_at=500)
        assert paused.results is None and paused.verified is None
        path = tmp_path / "matmul.ckpt"
        save_checkpoint(paused.simulation, path,
                        metadata={"kernel": "scalar-matmul",
                                  "cores": 2, "size": 6})
        outcome = api.replay(path)
        assert outcome.verified is True
        reference = run("scalar-matmul", cores=2, size=6)
        assert outcome.results.cycles == reference.results.cycles

    def test_replay_without_metadata_skips_verification(self, tmp_path):
        paused = run("scalar-matmul", cores=2, size=6, pause_at=500)
        path = tmp_path / "anonymous.ckpt"
        save_checkpoint(paused.simulation, path)
        outcome = api.replay(path)
        assert outcome.verified is None
        assert outcome.results.succeeded()
        assert outcome.succeeded  # unverifiable but cleanly finished


class TestConfigBuilder:
    def test_builder_matches_for_cores(self):
        built = (SimulationConfig.builder(4)
                 .l2_mode("private").noc(latency=6).vlen(512)
                 .build())
        direct = SimulationConfig.for_cores(
            4, l2_mode="private", vlen_bits=512,
            **{"noc.latency": 6})
        assert built == direct

    def test_builder_is_exported_everywhere(self):
        assert api.ConfigBuilder is ConfigBuilder
        assert repro.coyote.ConfigBuilder is ConfigBuilder


class TestReExports:
    def test_old_coyote_import_paths_still_work(self):
        for name in repro.coyote._API_NAMES:
            assert getattr(repro.coyote, name) is getattr(api, name)

    def test_old_resilience_import_paths_still_work(self):
        for name in repro.resilience._API_NAMES:
            assert getattr(repro.resilience, name) is getattr(api, name)

    def test_every_facade_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_check_api_lint_passes(self):
        assert check() == 0


class TestInstantiate:
    def test_size_keyword_routing(self):
        matmul = instantiate("scalar-matmul", 2, 6)
        assert matmul.program
        axpy = instantiate("vector-axpy", 2, 64)
        assert axpy.program

    def test_unknown_kernel_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            instantiate("bogus", 2, 8)
