"""Tests for the Coyote orchestrator: stalls, wakeups, end conditions."""

import pytest

from repro.assembler import assemble
from repro.coyote.config import SimulationConfig
from repro.coyote.orchestrator import Orchestrator, SimulationError


def run_program(source: str, cores: int = 1, **config_overrides):
    config = SimulationConfig.for_cores(cores, **config_overrides)
    orchestrator = Orchestrator(config, assemble(source))
    return orchestrator.run(), orchestrator


EXIT_TAIL = """
    li a0, 1
    la t6, tohost
    sd a0, 0(t6)
halt:
    j halt
.data
.align 3
tohost: .dword 0
"""


class TestBasicExecution:
    def test_trivial_program_completes(self):
        results, _orch = run_program(f""".text
_start:
    nop
    nop
{EXIT_TAIL}
""")
        assert results.exit_codes == {0: 0}
        assert results.instructions >= 4

    def test_cycles_advance_with_memory_latency(self):
        results, _orch = run_program(f""".text
_start:
    la a1, cell
    ld a2, 0(a1)
    add a3, a2, a2
{EXIT_TAIL}
cell: .dword 7
""")
        # At minimum one full memory round trip for the ifetch miss.
        assert results.cycles > 100

    def test_raw_stall_recorded(self):
        results, _orch = run_program(f""".text
_start:
    la a1, cell
    ld a2, 0(a1)     # L1 miss
    add a3, a2, a2   # RAW on a2 -> stall until fill
{EXIT_TAIL}
cell: .dword 7
""")
        assert results.raw_stall_cycles > 50

    def test_raw_stall_single_source_of_truth(self):
        # RAW-stall cycles are accounted once, in the orchestrator's
        # per-core state; the core model no longer carries a (formerly
        # duplicated, subtly different) ``raw_stalls`` event counter.
        results, orch = run_program(f""".text
_start:
    la a1, cell
    ld a2, 0(a1)
    add a3, a2, a2
{EXIT_TAIL}
cell: .dword 7
""")
        for core in orch.cores:
            assert not hasattr(core, "raw_stalls")
        assert results.raw_stall_cycles == sum(
            core_stats.raw_stall_cycles for core_stats in results.cores)
        assert results.raw_stall_cycles == sum(
            state.raw_stall_cycles for state in orch._states)

    def test_independent_work_hides_latency(self):
        """Instructions not touching the loading register keep issuing."""
        dependent, _ = run_program(f""".text
_start:
    la a1, cell
    ld a2, 0(a1)
    add a3, a2, a2
    addi a4, zero, 1
    addi a4, a4, 1
    addi a4, a4, 1
    addi a4, a4, 1
{EXIT_TAIL}
cell: .dword 7
""")
        independent, _ = run_program(f""".text
_start:
    la a1, cell
    ld a2, 0(a1)
    addi a4, zero, 1
    addi a4, a4, 1
    addi a4, a4, 1
    addi a4, a4, 1
    add a3, a2, a2
{EXIT_TAIL}
cell: .dword 7
""")
        assert independent.cycles <= dependent.cycles

    def test_ecall_halts_with_a0(self):
        results, _orch = run_program(""".text
_start:
    li a0, 3
    ecall
.data
tohost: .dword 0
""")
        assert results.exit_codes == {0: 3}

    def test_store_miss_does_not_stall(self):
        """Store misses generate hierarchy traffic but no RAW stall."""
        results, orch = run_program(f""".text
_start:
    la a1, cell
    sd a1, 0(a1)
    addi a2, zero, 1
    addi a2, a2, 1
{EXIT_TAIL}
cell: .dword 0
""")
        store_submitted = results.hierarchy_value(
            "memhier.requests_submitted")
        assert store_submitted >= 2  # ifetch + store at least


class TestMulticore:
    PROGRAM = f""".text
_start:
    csrr a0, mhartid
    la   a1, slots
    slli a2, a0, 3
    add  a1, a1, a2
    addi a3, a0, 100
    sd   a3, 0(a1)
{EXIT_TAIL}
slots: .zero 64
"""

    def test_all_cores_complete(self):
        results, orch = run_program(self.PROGRAM, cores=4)
        assert set(results.exit_codes) == {0, 1, 2, 3}
        memory = orch.machine.memory
        base = orch.program.symbols["slots"]
        assert [memory.load_int(base + 8 * i, 8) for i in range(4)] == \
            [100, 101, 102, 103]

    def test_per_core_stats(self):
        results, _orch = run_program(self.PROGRAM, cores=2)
        assert len(results.cores) == 2
        assert all(core.instructions > 0 for core in results.cores)
        assert all(core.halt_cycle is not None for core in results.cores)


class TestEndConditions:
    def test_cycle_budget(self):
        source = """.text
_start:
spin:
    j spin
.data
tohost: .dword 0
"""
        config = SimulationConfig.for_cores(1, max_cycles=5000)
        orchestrator = Orchestrator(config, assemble(source))
        with pytest.raises(SimulationError):
            orchestrator.run()

    def test_illegal_instruction_reported(self):
        source = """.text
_start:
    .word 0
.data
tohost: .dword 0
"""
        config = SimulationConfig.for_cores(1)
        orchestrator = Orchestrator(config, assemble(source))
        with pytest.raises(SimulationError):
            orchestrator.run()


class TestHierarchyCoupling:
    def test_l1_misses_reach_hierarchy(self):
        results, _orch = run_program(f""".text
_start:
    la a1, cell
    ld a2, 0(a1)
{EXIT_TAIL}
.align 6
cell: .dword 1
""")
        submitted = results.hierarchy_value("memhier.requests_submitted")
        completed = results.hierarchy_value("memhier.requests_completed")
        assert submitted == completed
        assert submitted >= 2  # at least one ifetch + one data load

    def test_events_fired(self):
        results, _orch = run_program(f""".text
_start:
    nop
{EXIT_TAIL}
""")
        assert results.events_fired > 0
