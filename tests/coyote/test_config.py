"""Tests for SimulationConfig."""

import pytest

from repro.coyote.config import SimulationConfig
from repro.memhier.noc import NocConfig
from repro.spike.simulator import L1Config


class TestForCores:
    def test_small_counts_single_tile(self):
        for cores in (1, 2, 4):
            config = SimulationConfig.for_cores(cores)
            assert config.num_cores == cores
            assert config.memhier.num_tiles == 1

    def test_eight_cores_one_tile(self):
        config = SimulationConfig.for_cores(8)
        assert config.memhier.num_tiles == 1
        assert config.memhier.cores_per_tile == 8

    def test_large_counts_use_tiles(self):
        config = SimulationConfig.for_cores(128)
        assert config.memhier.num_tiles == 16
        assert config.num_cores == 128

    def test_non_tileable_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig.for_cores(12)

    def test_non_power_of_two_tiles_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig.for_cores(24)  # 3 tiles

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig.for_cores(0)

    def test_memhier_overrides(self):
        config = SimulationConfig.for_cores(
            8, l2_mode="private", mapping_policy="page-to-bank",
            **{"noc.latency": 12})
        assert config.memhier.l2_mode == "private"
        assert config.memhier.mapping_policy == "page-to-bank"
        assert config.memhier.noc.latency == 12
        assert config.noc.latency == 12  # the SimulationConfig view

    def test_noc_overrides(self):
        config = SimulationConfig.for_cores(
            8, **{"noc.kind": "torus", "noc.routing": "adaptive",
                  "noc.columns": 2, "noc.link_capacity": 2})
        noc = config.noc
        assert noc.kind == "torus" and noc.wrap
        assert noc.routing == "adaptive"
        assert noc.columns == 2 and noc.link_capacity == 2

    def test_whole_noc_object_override(self):
        noc = NocConfig(kind="mesh", columns=2)
        config = SimulationConfig.for_cores(8, noc=noc)
        assert config.noc == noc
        # Dotted keys layer on top of the whole-object override.
        layered = SimulationConfig.for_cores(
            8, noc=noc, **{"noc.routing": "yx"})
        assert layered.noc.columns == 2
        assert layered.noc.routing == "yx"

    def test_unknown_noc_override_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig.for_cores(8, **{"noc.bogus": 1})

    def test_config_level_overrides(self):
        config = SimulationConfig.for_cores(8, vlen_bits=1024,
                                            trace_misses=True)
        assert config.vlen_bits == 1024 and config.trace_misses


class TestValidation:
    def test_bad_vlen(self):
        with pytest.raises(ValueError):
            SimulationConfig.for_cores(1, vlen_bits=100)

    def test_line_size_mismatch(self):
        with pytest.raises(ValueError):
            SimulationConfig(l1=L1Config(line_bytes=32))

    def test_bad_max_cycles(self):
        with pytest.raises(ValueError):
            SimulationConfig.for_cores(1, max_cycles=0)
