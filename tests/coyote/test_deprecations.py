"""Every deprecation shim warns exactly once per call and forwards.

The migration contract (docs/API.md) promises that pre-redesign
spellings keep working, at the cost of a single ``DeprecationWarning``
per call, and that the shim returns exactly what the canonical path
returns.  This file is the canonical home of that coverage; everything
else in the test suite uses the new spellings.
"""

import json
import warnings

import pytest

from repro.coyote.cli import build_parser
from repro.coyote.config import SimulationConfig
from repro.coyote.sweep import Sweep
from repro.kernels import vector_axpy
from repro.resilience.faults import FaultPlan, load_fault_plan

PLAN_DOC = {
    "seed": 7,
    "faults": [
        {"target": "l2bank", "kind": "delay", "start": 100, "end": 200,
         "probability": 0.25, "extra": 3},
    ],
}


def make_axpy():
    return vector_axpy(length=32, num_cores=2)


def run_tiny_sweep():
    return Sweep(base_cores=2, axes={"noc.latency": [2]}).run(make_axpy)


class TestSweepTableFormat:
    def test_warns_exactly_once_and_forwards(self):
        table = run_tiny_sweep()
        with pytest.warns(DeprecationWarning,
                          match=r"SweepTable\.format\(\) is deprecated; "
                                r"use SweepTable\.to_text\(\)") as record:
            legacy = table.format(("cycles",))
        assert len(record) == 1
        assert legacy == table.to_text(("cycles",))

    def test_to_text_does_not_warn(self):
        table = run_tiny_sweep()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            table.to_text(("cycles",))


class TestLoadFaultPlan:
    def test_warns_exactly_once_and_forwards(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(PLAN_DOC))
        with pytest.warns(DeprecationWarning,
                          match=r"load_fault_plan\(\) is deprecated; "
                                r"use FaultPlan\.load\(\)") as record:
            faults, seed = load_fault_plan(path)
        assert len(record) == 1
        plan = FaultPlan.load(path)
        assert faults == plan.faults
        assert seed == plan.seed == 7

    def test_fault_plan_load_does_not_warn(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(PLAN_DOC))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            FaultPlan.load(path)


class TestFlatNocOverrides:
    def test_each_legacy_key_warns_once_and_forwards(self):
        for legacy, value, attr in (("noc_kind", "mesh", "kind"),
                                    ("noc_latency", 3, "latency"),
                                    ("mesh_columns", 2, "columns")):
            with pytest.warns(DeprecationWarning,
                              match=rf"the '{legacy}' override is "
                                    rf"deprecated") as record:
                config = SimulationConfig.for_cores(2, **{legacy: value})
            assert len(record) == 1
            assert getattr(config.noc, attr) == value

    def test_legacy_and_canonical_configs_are_equal(self):
        with pytest.warns(DeprecationWarning):
            legacy = SimulationConfig.for_cores(
                4, noc_kind="mesh", noc_latency=3, mesh_columns=2)
        canonical = SimulationConfig.for_cores(
            4, **{"noc.kind": "mesh", "noc.latency": 3,
                  "noc.columns": 2})
        assert legacy == canonical

    def test_dotted_spellings_stay_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SimulationConfig.for_cores(
                2, **{"noc.kind": "torus", "noc.routing": "yx"})

    def test_from_dict_translates_legacy_memhier_keys(self):
        data = SimulationConfig.for_cores(2).to_dict()
        data["memhier"].pop("noc")
        data["memhier"]["noc_kind"] = "mesh"
        data["memhier"]["noc_latency"] = 4
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always", DeprecationWarning)
            config = SimulationConfig.from_dict(data)
        messages = sorted(str(entry.message) for entry in record)
        assert len(messages) == 2  # one per legacy key
        assert "the config key 'memhier.noc_kind' is deprecated" \
            in messages[0]
        assert "the config key 'memhier.noc_latency' is deprecated" \
            in messages[1]
        assert config.noc.kind == "mesh"
        assert config.noc.latency == 4


class TestConfigBuilderNocLatency:
    def test_warns_once_and_forwards(self):
        with pytest.warns(DeprecationWarning,
                          match=r"ConfigBuilder\.noc_latency\(\) is "
                                r"deprecated; use "
                                r"ConfigBuilder\.noc\(latency=") as record:
            built = SimulationConfig.builder(2).noc_latency(9).build()
        assert len(record) == 1
        assert built == SimulationConfig.builder(2).noc(latency=9).build()

    def test_noc_method_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SimulationConfig.builder(2).noc("mesh", latency=9).build()


class TestNocCliAliases:
    def test_noc_alias_warns_and_sets_topology(self):
        parser = build_parser()
        with pytest.warns(DeprecationWarning,
                          match=r"--noc is deprecated; "
                                r"use --noc-topology") as record:
            args = parser.parse_args(
                ["--kernel", "scalar-matmul", "--noc", "mesh"])
        assert len(record) == 1
        assert args.noc_topology == "mesh"

    def test_noc_latency_alias_warns_and_sets_crossbar_latency(self):
        parser = build_parser()
        with pytest.warns(DeprecationWarning,
                          match=r"--noc-latency is deprecated; "
                                r"use --noc-crossbar-latency") as record:
            args = parser.parse_args(
                ["--kernel", "scalar-matmul", "--noc-latency", "9"])
        assert len(record) == 1
        assert args.noc_crossbar_latency == 9

    def test_canonical_flags_stay_silent(self):
        parser = build_parser()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            args = parser.parse_args(
                ["--kernel", "scalar-matmul",
                 "--noc-topology", "torus", "--noc-routing", "adaptive",
                 "--noc-crossbar-latency", "9"])
        assert args.noc_topology == "torus"
        assert args.noc_routing == "adaptive"

    def test_aliases_are_hidden_from_help(self):
        help_text = build_parser().format_help()
        assert "--noc-latency" not in help_text
        assert "--noc " not in help_text


class TestCheckpointAtAlias:
    def test_warns_exactly_once_and_sets_pause_at(self):
        parser = build_parser()
        with pytest.warns(DeprecationWarning,
                          match=r"--checkpoint-at is deprecated; "
                                r"use --pause-at") as record:
            args = parser.parse_args(
                ["--kernel", "scalar-matmul", "--checkpoint-at", "1300"])
        assert len(record) == 1
        assert args.pause_at == 1300

    def test_canonical_flag_matches_and_stays_silent(self):
        parser = build_parser()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            args = parser.parse_args(
                ["--kernel", "scalar-matmul", "--pause-at", "1300"])
        assert args.pause_at == 1300

    def test_alias_is_hidden_from_help(self):
        assert "--checkpoint-at" not in build_parser().format_help()
