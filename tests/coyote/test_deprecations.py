"""Every deprecation shim warns exactly once per call and forwards.

The migration contract (docs/API.md) promises that pre-redesign
spellings keep working, at the cost of a single ``DeprecationWarning``
per call, and that the shim returns exactly what the canonical path
returns.  This file is the canonical home of that coverage; everything
else in the test suite uses the new spellings.
"""

import json
import warnings

import pytest

from repro.coyote.cli import build_parser
from repro.coyote.sweep import Sweep
from repro.kernels import vector_axpy
from repro.resilience.faults import FaultPlan, load_fault_plan

PLAN_DOC = {
    "seed": 7,
    "faults": [
        {"target": "l2bank", "kind": "delay", "start": 100, "end": 200,
         "probability": 0.25, "extra": 3},
    ],
}


def make_axpy():
    return vector_axpy(length=32, num_cores=2)


def run_tiny_sweep():
    return Sweep(base_cores=2, axes={"noc_latency": [2]}).run(make_axpy)


class TestSweepTableFormat:
    def test_warns_exactly_once_and_forwards(self):
        table = run_tiny_sweep()
        with pytest.warns(DeprecationWarning,
                          match=r"SweepTable\.format\(\) is deprecated; "
                                r"use SweepTable\.to_text\(\)") as record:
            legacy = table.format(("cycles",))
        assert len(record) == 1
        assert legacy == table.to_text(("cycles",))

    def test_to_text_does_not_warn(self):
        table = run_tiny_sweep()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            table.to_text(("cycles",))


class TestLoadFaultPlan:
    def test_warns_exactly_once_and_forwards(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(PLAN_DOC))
        with pytest.warns(DeprecationWarning,
                          match=r"load_fault_plan\(\) is deprecated; "
                                r"use FaultPlan\.load\(\)") as record:
            faults, seed = load_fault_plan(path)
        assert len(record) == 1
        plan = FaultPlan.load(path)
        assert faults == plan.faults
        assert seed == plan.seed == 7

    def test_fault_plan_load_does_not_warn(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(PLAN_DOC))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            FaultPlan.load(path)


class TestCheckpointAtAlias:
    def test_warns_exactly_once_and_sets_pause_at(self):
        parser = build_parser()
        with pytest.warns(DeprecationWarning,
                          match=r"--checkpoint-at is deprecated; "
                                r"use --pause-at") as record:
            args = parser.parse_args(
                ["--kernel", "scalar-matmul", "--checkpoint-at", "1300"])
        assert len(record) == 1
        assert args.pause_at == 1300

    def test_canonical_flag_matches_and_stays_silent(self):
        parser = build_parser()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            args = parser.parse_args(
                ["--kernel", "scalar-matmul", "--pause-at", "1300"])
        assert args.pause_at == 1300

    def test_alias_is_hidden_from_help(self):
        assert "--checkpoint-at" not in build_parser().format_help()
