"""Software-visible cycle counter: kernels can time themselves.

The orchestrator wires the simulated clock into each hart's ``cycle``
CSR, so bare-metal code can do what HPC kernels do on real hardware —
read ``rdcycle`` around a region and report the delta.
"""

from repro.assembler import assemble
from repro.coyote import Simulation, SimulationConfig


SOURCE = """.text
_start:
    rdcycle s0               # t0 = cycles at start
    la   a1, buffer
    li   a2, 64
warm:
    ld   a3, 0(a1)           # march through 64 lines -> L1 misses
    addi a1, a1, 64
    addi a2, a2, -1
    bnez a2, warm
    rdcycle s1
    sub  s2, s1, s0          # measured cycles
    la   a4, out
    sd   s2, 0(a4)
    li   a0, 1
    la   t6, tohost
    sd   a0, 0(t6)
halt:
    j halt
.data
.align 3
tohost: .dword 0
out:    .dword 0
.align 6
buffer: .zero 4096
"""


class TestRdcycle:
    def run(self):
        program = assemble(SOURCE)
        simulation = Simulation(SimulationConfig.for_cores(1), program)
        results = simulation.run()
        measured = simulation.memory.load_int(program.symbols["out"], 8)
        return results, measured

    def test_measured_window_positive(self):
        _results, measured = self.run()
        assert measured > 0

    def test_measured_window_below_total(self):
        results, measured = self.run()
        assert measured < results.cycles

    def test_measurement_sees_memory_latency(self):
        """64 uncached line loads must cost far more than 64 cycles."""
        _results, measured = self.run()
        assert measured > 64 * 10

    def test_instret_available_too(self):
        program = assemble(""".text
_start:
    nop
    nop
    rdinstret s0
    la a4, out
    sd s0, 0(a4)
    li a0, 1
    la t6, tohost
    sd a0, 0(t6)
halt:
    j halt
.data
.align 3
tohost: .dword 0
out:    .dword 0
""")
        simulation = Simulation(SimulationConfig.for_cores(1), program)
        simulation.run()
        assert simulation.memory.load_int(program.symbols["out"],
                                          8) == 2
