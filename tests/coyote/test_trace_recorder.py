"""Tests for the miss-trace recorder and its Paraver output."""

from pathlib import Path

import pytest

from repro.coyote import Simulation, SimulationConfig
from repro.coyote.trace import MissTraceRecorder
from repro.kernels import scalar_spmv
from repro.memhier.request import MemRequest, RequestKind
from repro.paraver import MissKind, parse_prv


def make_request(kind, request_id=1, complete=150):
    request = MemRequest(request_id=request_id, core_id=2, tile_id=0,
                         line_address=0x1000, kind=kind, issue_cycle=10)
    request.bank_id = 3
    request.l2_hit = False
    request.complete_cycle = complete
    return request


class TestRecorder:
    def test_records_loads_stores_ifetches(self):
        recorder = MissTraceRecorder()
        for kind in (RequestKind.LOAD, RequestKind.STORE,
                     RequestKind.IFETCH):
            recorder(make_request(kind))
        assert len(recorder) == 3
        kinds = {record.kind for record in recorder.records}
        assert kinds == {MissKind.LOAD, MissKind.STORE, MissKind.IFETCH}

    def test_ignores_writebacks(self):
        recorder = MissTraceRecorder()
        recorder(make_request(RequestKind.WRITEBACK))
        assert len(recorder) == 0

    def test_skips_unknown_request_kinds(self):
        """Kinds outside the miss-kind map are dropped, not crashed on."""
        recorder = MissTraceRecorder()
        request = make_request(RequestKind.LOAD)
        request.kind = "not-a-kind"
        recorder(request)
        assert len(recorder) == 0

    def test_record_fields(self):
        recorder = MissTraceRecorder()
        recorder(make_request(RequestKind.LOAD))
        record = recorder.records[0]
        assert record.core_id == 2
        assert record.bank_id == 3
        assert record.latency == 140
        assert record.l2_hit is False

    def test_record_carries_l2_hit_flag(self):
        recorder = MissTraceRecorder()
        request = make_request(RequestKind.LOAD, complete=40)
        request.l2_hit = True
        recorder(request)
        assert recorder.records[0].l2_hit is True

    def test_record_carries_bank_id_per_request(self):
        recorder = MissTraceRecorder()
        for bank_id in (0, 5, 11):
            request = make_request(RequestKind.LOAD)
            request.bank_id = bank_id
            recorder(request)
        assert [record.bank_id for record in recorder.records] \
            == [0, 5, 11]

    def test_write_produces_parseable_triple(self, tmp_path):
        recorder = MissTraceRecorder()
        recorder(make_request(RequestKind.LOAD))
        prv, pcf = recorder.write(tmp_path / "t", num_cores=4,
                                  duration=200)
        assert Path(prv).exists() and Path(pcf).exists()
        assert (tmp_path / "t.row").exists()
        records, duration, cores = parse_prv(prv)
        assert len(records) == 1 and cores == 4 and duration == 200


class TestTraceAgainstStats:
    def test_trace_count_matches_hierarchy_counters(self):
        """Recorded misses == completed response-needing requests."""
        config = SimulationConfig.for_cores(4, trace_misses=True)
        workload = scalar_spmv(num_rows=32, nnz_per_row=4, num_cores=4)
        simulation = Simulation(config, workload.program)
        results = simulation.run()
        completed = results.hierarchy_value(
            "memhier.requests_completed")
        assert len(simulation.trace.records) == int(completed)

    def test_trace_latencies_positive(self):
        config = SimulationConfig.for_cores(2, trace_misses=True)
        workload = scalar_spmv(num_rows=16, nnz_per_row=4, num_cores=2)
        simulation = Simulation(config, workload.program)
        simulation.run()
        assert all(record.latency > 0
                   for record in simulation.trace.records)

    def test_l2_hit_flags_consistent_with_bank_stats(self):
        config = SimulationConfig.for_cores(2, trace_misses=True)
        workload = scalar_spmv(num_rows=16, nnz_per_row=4, num_cores=2)
        simulation = Simulation(config, workload.program)
        results = simulation.run()
        traced_hits = sum(1 for record in simulation.trace.records
                          if record.l2_hit)
        bank_hits = sum(
            sample.value for sample in results.hierarchy_samples
            if sample.name == "hits" and ".bank" in sample.path)
        assert traced_hits == int(bank_hits)
