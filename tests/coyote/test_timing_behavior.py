"""Qualitative timing-model tests: turning a knob must move the
simulated outcome in the physically sensible direction."""

import pytest

from repro.coyote import Simulation, SimulationConfig
from repro.kernels import (
    scalar_matmul,
    scalar_spmv,
    stream_triad,
    vector_matmul,
)
from repro.spike.simulator import L1Config


def run(workload_factory, **config_overrides):
    config = SimulationConfig.for_cores(4, **config_overrides)
    workload = workload_factory()
    simulation = Simulation(config, workload.program)
    results = simulation.run()
    assert results.succeeded()
    assert workload.verify(simulation.memory)
    return results


class TestLatencyKnobs:
    def test_memory_latency_increases_cycles(self):
        fast = run(lambda: stream_triad(length=512, num_cores=4),
                   mem_latency=50)
        slow = run(lambda: stream_triad(length=512, num_cores=4),
                   mem_latency=400)
        assert slow.cycles > fast.cycles

    def test_noc_latency_increases_cycles(self):
        fast = run(lambda: stream_triad(length=512, num_cores=4),
                   **{"noc.latency": 1})
        slow = run(lambda: stream_triad(length=512, num_cores=4),
                   **{"noc.latency": 30})
        assert slow.cycles > fast.cycles

    def test_l2_hit_latency_matters_with_reuse(self):
        fast = run(lambda: scalar_matmul(size=16, num_cores=4),
                   l2_hit_latency=4,
                   l1=L1Config(dcache_bytes=1024, icache_bytes=4096,
                               associativity=4))
        slow = run(lambda: scalar_matmul(size=16, num_cores=4),
                   l2_hit_latency=40,
                   l1=L1Config(dcache_bytes=1024, icache_bytes=4096,
                               associativity=4))
        assert slow.cycles > fast.cycles

    def test_memory_bandwidth_limits_streaming(self):
        ample = run(lambda: stream_triad(length=1024, num_cores=4),
                    mem_cycles_per_request=1)
        scarce = run(lambda: stream_triad(length=1024, num_cores=4),
                     mem_cycles_per_request=32)
        assert scarce.cycles > ample.cycles


class TestCacheKnobs:
    def test_bigger_l1_fewer_misses(self):
        small = run(lambda: scalar_matmul(size=16, num_cores=4),
                    l1=L1Config(dcache_bytes=512, icache_bytes=4096,
                                associativity=4))
        big = run(lambda: scalar_matmul(size=16, num_cores=4),
                  l1=L1Config(dcache_bytes=32 * 1024,
                              icache_bytes=4096, associativity=4))
        assert big.l1d_miss_rate() < small.l1d_miss_rate()
        assert big.cycles < small.cycles

    def test_tiny_icache_causes_fetch_stalls(self):
        # One single-line I-cache: any loop spanning two lines thrashes.
        tiny = run(lambda: scalar_spmv(num_rows=32, nnz_per_row=4,
                                       num_cores=4),
                   l1=L1Config(icache_bytes=64, dcache_bytes=32 * 1024,
                               associativity=1))
        normal = run(lambda: scalar_spmv(num_rows=32, nnz_per_row=4,
                                         num_cores=4))
        assert tiny.fetch_stall_cycles >= normal.fetch_stall_cycles
        assert tiny.l1i_miss_rate() > normal.l1i_miss_rate()


class TestWorkloadShapes:
    def test_vector_fewer_instructions_than_scalar(self):
        scalar = run(lambda: scalar_matmul(size=12, num_cores=4))
        vector = run(lambda: vector_matmul(size=12, num_cores=4))
        assert vector.instructions < scalar.instructions / 2

    def test_more_cores_fewer_cycles(self):
        one = Simulation(SimulationConfig.for_cores(1),
                         scalar_matmul(size=16, num_cores=1).program)
        four = Simulation(SimulationConfig.for_cores(4),
                          scalar_matmul(size=16, num_cores=4).program)
        cycles_one = one.run().cycles
        cycles_four = four.run().cycles
        assert cycles_four < cycles_one

    def test_cycles_exceed_per_core_instructions(self):
        """With a timing model, cycles >= the longest core's
        instruction count."""
        results = run(lambda: scalar_spmv(num_rows=32, nnz_per_row=4,
                                          num_cores=4))
        busiest = max(core.instructions for core in results.cores)
        assert results.cycles >= busiest
