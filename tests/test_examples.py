"""Smoke tests: the shipped examples must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

# The fast examples run in CI-style tests; the heavier sweeps are
# exercised by the benchmarks instead.
FAST_EXAMPLES = ["quickstart.py"]


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=600)


def test_examples_directory_complete():
    present = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart.py", "spmv_design_space.py",
            "stencil_scaling.py", "paraver_trace_analysis.py",
            "throughput_scaling.py", "codesign_compression.py",
            "sweep_api.py"} <= present


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr
    assert "matches numpy: True" in result.stdout


def test_every_example_compiles():
    """All examples must at least be importable/compilable."""
    for path in EXAMPLES_DIR.glob("*.py"):
        source = path.read_text()
        compile(source, str(path), "exec")
        assert '"""' in source, f"{path.name} lacks a docstring"
        assert "def main(" in source, f"{path.name} lacks main()"
