"""Tests for machine-readable export: results.to_dict, the CLI
telemetry flags, config round-trips and sweep integration."""

import json

import pytest

from repro.coyote import Simulation, SimulationConfig, Sweep, \
    TelemetryConfig
from repro.coyote.cli import main as cli_main
from repro.kernels import scalar_matmul, scalar_spmv


@pytest.fixture(scope="module")
def plain_results():
    workload = scalar_matmul(size=8, num_cores=2)
    simulation = Simulation(SimulationConfig.for_cores(2),
                            workload.program)
    return simulation.run()


class TestResultsToDict:
    def test_json_serialisable(self, plain_results):
        data = plain_results.to_dict()
        rebuilt = json.loads(json.dumps(data))
        assert rebuilt["cycles"] == plain_results.cycles
        assert rebuilt["instructions"] == plain_results.instructions

    def test_core_entries(self, plain_results):
        data = plain_results.to_dict()
        assert len(data["cores"]) == 2
        core = data["cores"][0]
        assert core["core_id"] == 0
        assert core["l1d"]["reads"] >= 0
        assert core["exit_code"] == 0

    def test_hierarchy_flattened(self, plain_results):
        data = plain_results.to_dict()
        assert data["hierarchy"]["memhier.requests_completed"] \
            == plain_results.hierarchy_value("memhier.requests_completed")

    def test_console_optional(self, plain_results):
        assert "console" in plain_results.to_dict()
        assert "console" not in \
            plain_results.to_dict(include_console=False)

    def test_telemetry_sections_absent_when_disabled(self, plain_results):
        data = plain_results.to_dict()
        assert "timeseries" not in data
        assert "latency_histograms" not in data
        assert "host_profile" not in data


class TestHierarchyValueIndex:
    def test_lookup_matches_linear_scan(self, plain_results):
        for sample in plain_results.hierarchy_samples:
            assert plain_results.hierarchy_value(sample.full_name) \
                == sample.value

    def test_unknown_name_raises(self, plain_results):
        with pytest.raises(KeyError):
            plain_results.hierarchy_value("no.such.counter")

    def test_bank_utilisation_uses_index(self, plain_results):
        utilisation = plain_results.bank_utilisation()
        assert utilisation
        for bank, requests in utilisation.items():
            assert plain_results.hierarchy_value(
                f"memhier.tile0.{bank}.requests") == requests


class TestCliMetricsOut:
    def test_writes_full_document(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert cli_main(["--kernel", "scalar-matmul", "--cores", "2",
                         "--size", "8", "--metrics-out", str(path)]) == 0
        data = json.loads(path.read_text())
        # The full to_dict payload...
        for key in ("cycles", "instructions", "ipc", "cores",
                    "hierarchy", "activity", "exit_codes"):
            assert key in data
        # ... plus the time series and telemetry sections.
        assert data["timeseries"]["sample_interval"] > 0
        assert data["timeseries"]["ipc"]
        assert data["latency_histograms"]
        assert data["host_profile"]["spike_seconds"] > 0
        assert "metrics written" in capsys.readouterr().out

    def test_sample_interval_flag_respected(self, tmp_path):
        path = tmp_path / "metrics.json"
        assert cli_main(["--kernel", "scalar-matmul", "--cores", "2",
                         "--size", "8", "--metrics-out", str(path),
                         "--sample-interval", "100"]) == 0
        data = json.loads(path.read_text())
        assert data["timeseries"]["sample_interval"] == 100

    def test_chrome_trace_flag(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert cli_main(["--kernel", "scalar-matmul", "--cores", "2",
                         "--size", "8", "--chrome-trace",
                         str(path)]) == 0
        document = json.loads(path.read_text())
        assert document["traceEvents"]
        assert "chrome trace written" in capsys.readouterr().out

    def test_progress_prints_breakdown(self, capsys):
        assert cli_main(["--kernel", "scalar-matmul", "--cores", "2",
                         "--size", "8", "--progress"]) == 0
        assert "host wall-time breakdown" in capsys.readouterr().out

    def test_plain_run_unaffected(self, capsys):
        assert cli_main(["--kernel", "scalar-matmul", "--cores", "2",
                         "--size", "8"]) == 0
        out = capsys.readouterr().out
        assert "metrics written" not in out
        assert "host wall-time breakdown" not in out

    def test_negative_sample_interval_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--kernel", "scalar-matmul", "--cores", "2",
                      "--size", "8", "--sample-interval", "-5"])
        assert excinfo.value.code == 2
        assert "--sample-interval" in capsys.readouterr().err

    def test_missing_output_directory_fails_before_the_run(
            self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--kernel", "scalar-matmul", "--cores", "2",
                      "--size", "8",
                      "--metrics-out", str(tmp_path / "no" / "m.json")])
        assert excinfo.value.code == 2
        assert "output directory" in capsys.readouterr().err

    def test_config_file_telemetry_survives_cli_layering(self, tmp_path):
        """--metrics-out must not clobber a --config sampling grid with
        the implied default interval."""
        config = SimulationConfig.for_cores(
            2, telemetry=TelemetryConfig(sample_interval=250))
        config_path = config.save(tmp_path / "config.json")
        metrics = tmp_path / "metrics.json"
        assert cli_main(["--kernel", "scalar-matmul", "--size", "8",
                         "--config", str(config_path),
                         "--metrics-out", str(metrics)]) == 0
        data = json.loads(metrics.read_text())
        assert data["timeseries"]["sample_interval"] == 250


class TestConfigRoundTrip:
    def test_telemetry_survives_save_load(self, tmp_path):
        config = SimulationConfig.for_cores(
            2, telemetry=TelemetryConfig(sample_interval=500,
                                         histograms=True))
        path = config.save(tmp_path / "config.json")
        loaded = SimulationConfig.load(path)
        assert loaded == config
        assert loaded.telemetry.sample_interval == 500
        assert loaded.telemetry.histograms

    def test_old_configs_without_telemetry_still_load(self, tmp_path):
        data = SimulationConfig.for_cores(2).to_dict()
        del data["telemetry"]
        path = tmp_path / "old.json"
        path.write_text(json.dumps(data))
        loaded = SimulationConfig.load(path)
        assert loaded.telemetry == TelemetryConfig()

    def test_invalid_telemetry_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig.for_cores(
                2, telemetry=TelemetryConfig(sample_interval=-1))


class TestFailureDiagnostics:
    @staticmethod
    def make_results(exit_codes, num_cores=2):
        from repro.coyote.stats import CoreStats, SimulationResults
        from repro.spike.l1cache import L1Stats
        cores = [CoreStats(core_id=i, instructions=5, raw_stall_cycles=0,
                           fetch_stall_cycles=0,
                           halt_cycle=10 if i in exit_codes else None,
                           exit_code=exit_codes.get(i),
                           l1i=L1Stats(), l1d=L1Stats())
                 for i in range(num_cores)]
        return SimulationResults(cycles=10, instructions=10,
                                 wall_seconds=0.1, cores=cores,
                                 hierarchy_samples=[], console="",
                                 exit_codes=exit_codes)

    def test_nonzero_exit_cores_named(self, capsys):
        from repro.coyote.cli import _report_failure
        workload = scalar_matmul(size=4, num_cores=2)
        _report_failure(workload,
                        self.make_results({0: 0, 1: 3}))
        err = capsys.readouterr().err
        assert "FAILED" in err
        assert "core 1 exited with code 3" in err
        assert "core 0" not in err

    def test_missing_cores_named(self, capsys):
        from repro.coyote.cli import _report_failure
        workload = scalar_matmul(size=4, num_cores=2)
        _report_failure(workload, self.make_results({0: 0}))
        err = capsys.readouterr().err
        assert "cores [1] never reached exit" in err

    def test_verify_mismatch_explained(self, capsys):
        from repro.coyote.cli import _report_failure
        workload = scalar_matmul(size=4, num_cores=2)
        _report_failure(workload, self.make_results({0: 0, 1: 0}))
        err = capsys.readouterr().err
        assert "verify mismatch" in err


class TestSweepIntegration:
    def test_sweep_points_carry_time_series(self):
        sweep = Sweep(base_cores=2,
                      axes={"mem_latency": [50, 200]},
                      telemetry=TelemetryConfig(sample_interval=100))
        table = sweep.run(
            lambda: scalar_spmv(num_rows=16, nnz_per_row=4, num_cores=2))
        assert len(table.points) == 2
        for point in table.points:
            timeseries = point.results.timeseries
            assert timeseries is not None
            assert timeseries.intervals()
            assert timeseries.total_delta("cores.instructions") \
                == sum(core.instructions for core in point.results.cores)
