"""Tests for the interval sampler and its consistency guarantee."""

import pytest

from repro.coyote import Simulation, SimulationConfig, TelemetryConfig
from repro.kernels import scalar_matmul, scalar_spmv, stream_triad
from repro.telemetry.sampler import Interval, IntervalSampler


def run(workload, cores, interval=200, **overrides):
    config = SimulationConfig.for_cores(
        cores, telemetry=TelemetryConfig(sample_interval=interval),
        **overrides)
    simulation = Simulation(config, workload.program)
    results = simulation.run()
    assert results.succeeded()
    return results


class TestSamplerUnit:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            IntervalSampler(0, dict)

    def test_deltas_between_snapshots(self):
        values = {"a": 0}
        sampler = IntervalSampler(10, lambda: dict(values))
        sampler.start(0)
        values["a"] = 7
        assert sampler.maybe_sample(10)
        values["a"] = 12
        sampler.finalize(25)
        assert sampler.series("a") == [7, 5]
        assert sampler.total_delta("a") == 12

    def test_maybe_sample_waits_for_boundary(self):
        sampler = IntervalSampler(100, dict)
        sampler.start(0)
        assert not sampler.maybe_sample(99)
        assert sampler.maybe_sample(100)
        assert not sampler.maybe_sample(199)

    def test_fast_forward_realigns_to_grid(self):
        """A jump over several boundaries yields one catch-up sample."""
        sampler = IntervalSampler(100, dict)
        sampler.start(0)
        assert sampler.maybe_sample(730)  # skipped 100..700
        assert not sampler.maybe_sample(799)
        assert sampler.maybe_sample(800)  # back on the grid

    def test_counter_vanishing_treated_as_zero_start(self):
        """Counters appearing mid-run delta from an implicit zero."""
        values = {}
        sampler = IntervalSampler(10, lambda: dict(values))
        sampler.start(0)
        values["late"] = 4
        sampler.finalize(10)
        assert sampler.series("late") == [4]

    def test_interval_helpers(self):
        interval = Interval(0, 100, {"cores.instructions": 50,
                                     "activity.0": 40, "activity.2": 60})
        assert interval.cycles == 100
        assert interval.ipc == pytest.approx(0.5)
        assert interval.active_cores == pytest.approx(1.2)

    def test_empty_interval_is_safe(self):
        interval = Interval(5, 5, {})
        assert interval.ipc == 0.0
        assert interval.active_cores == 0.0
        assert interval.l1d_miss_rate == 0.0


class TestConsistencyGuarantee:
    """Interval deltas must sum exactly to the end-of-run counters."""

    @pytest.mark.parametrize("interval", (50, 200, 1000))
    def test_deltas_sum_to_final_hierarchy_counters(self, interval):
        workload = scalar_matmul(size=8, num_cores=4)
        results = run(workload, 4, interval=interval)
        timeseries = results.timeseries
        for sample in results.hierarchy_samples:
            assert timeseries.total_delta(sample.full_name) \
                == pytest.approx(sample.value), sample.full_name

    def test_deltas_sum_under_memory_pressure(self):
        """Fast-forwarded stall regions must not lose samples."""
        workload = stream_triad(length=256, num_cores=2)
        results = run(workload, 2, interval=64, mem_latency=400)
        timeseries = results.timeseries
        for sample in results.hierarchy_samples:
            assert timeseries.total_delta(sample.full_name) \
                == pytest.approx(sample.value), sample.full_name

    def test_instruction_deltas_sum_to_core_totals(self):
        workload = scalar_spmv(num_rows=24, nnz_per_row=4, num_cores=2)
        results = run(workload, 2, interval=100)
        per_core = sum(core.instructions for core in results.cores)
        assert results.timeseries.total_delta("cores.instructions") \
            == per_core

    def test_final_snapshot_at_final_cycle(self):
        workload = scalar_matmul(size=8, num_cores=4)
        results = run(workload, 4, interval=100)
        assert results.timeseries.snapshots[-1].cycle == results.cycles


class TestSeriesApi:
    def test_interval_spans_are_contiguous(self):
        workload = scalar_matmul(size=8, num_cores=4)
        results = run(workload, 4, interval=128)
        intervals = results.timeseries.intervals()
        assert intervals[0].start_cycle == 0
        for before, after in zip(intervals, intervals[1:]):
            assert before.end_cycle == after.start_cycle
        assert intervals[-1].end_cycle == results.cycles

    def test_ipc_over_time_consistent_with_aggregate(self):
        workload = scalar_matmul(size=8, num_cores=4)
        results = run(workload, 4, interval=128)
        timeseries = results.timeseries
        weighted = sum(interval.ipc * interval.cycles
                       for interval in timeseries.intervals())
        assert weighted / results.cycles == pytest.approx(results.ipc)

    def test_bank_utilisation_over_time_matches_final(self):
        workload = scalar_spmv(num_rows=32, nnz_per_row=4, num_cores=4)
        results = run(workload, 4, interval=100)
        over_time = results.timeseries.bank_utilisation_over_time()
        final = results.bank_utilisation()
        assert set(over_time) == set(final)
        for bank, series in over_time.items():
            assert sum(series) == pytest.approx(final[bank])

    def test_active_cores_bounded(self):
        workload = scalar_matmul(size=8, num_cores=4)
        results = run(workload, 4, interval=100)
        for value in results.timeseries.active_cores_over_time():
            assert 0.0 <= value <= 4.0

    def test_to_dict_shape(self):
        workload = scalar_matmul(size=6, num_cores=2)
        results = run(workload, 2, interval=100)
        data = results.timeseries.to_dict()
        intervals = len(results.timeseries.intervals())
        assert data["sample_interval"] == 100
        assert len(data["ipc"]) == intervals
        assert len(data["interval_end_cycles"]) == intervals
        for series in data["counters"].values():
            assert len(series) == intervals

    def test_disabled_by_default(self):
        workload = scalar_matmul(size=6, num_cores=2)
        config = SimulationConfig.for_cores(2)
        results = Simulation(config, workload.program).run()
        assert results.timeseries is None
        assert results.latency is None
        assert results.host_profile is None
