"""Tests for the host-side profiler and progress heartbeat."""

import logging

import pytest

from repro.coyote import Simulation, SimulationConfig, TelemetryConfig
from repro.kernels import scalar_matmul
from repro.telemetry.profiler import HostProfiler


class TestHostProfiler:
    def test_sections_accumulate(self):
        profiler = HostProfiler()
        profiler.spike_seconds += 0.5
        profiler.sparta_seconds += 0.25
        data = profiler.to_dict()
        assert data["spike_seconds"] == pytest.approx(0.5)
        assert data["sparta_seconds"] == pytest.approx(0.25)
        assert data["wall_seconds"] >= 0.0

    def test_format_report_mentions_all_sections(self):
        report = HostProfiler().format_report()
        for section in ("spike", "sparta", "stats", "other", "total"):
            assert section in report

    def test_heartbeat_fires_on_boundary(self, caplog):
        profiler = HostProfiler(progress_cycles=100)
        with caplog.at_level(logging.INFO, logger="repro.telemetry"):
            assert not profiler.maybe_heartbeat(50, 10, 5)
            assert profiler.maybe_heartbeat(100, 20, 10)
            assert not profiler.maybe_heartbeat(150, 30, 15)
            assert profiler.maybe_heartbeat(230, 40, 20)
        messages = [record.message for record in caplog.records]
        assert len(messages) == 2
        assert all("progress" in message for message in messages)
        assert "cycle=100" in messages[0]

    def test_heartbeat_realigns_after_jump(self):
        profiler = HostProfiler(progress_cycles=100)
        assert profiler.maybe_heartbeat(730, 0, 0)
        assert not profiler.maybe_heartbeat(799, 0, 0)
        assert profiler.maybe_heartbeat(800, 0, 0)


class TestEndToEnd:
    def test_host_profile_in_results(self):
        config = SimulationConfig.for_cores(
            2, telemetry=TelemetryConfig(host_profile=True))
        workload = scalar_matmul(size=8, num_cores=2)
        results = Simulation(config, workload.program).run()
        profile = results.host_profile
        assert profile is not None
        assert profile["spike_seconds"] > 0.0
        assert profile["sparta_seconds"] > 0.0
        # Sections must not exceed the total wall time they partition.
        measured = (profile["spike_seconds"] + profile["sparta_seconds"]
                    + profile["stats_seconds"])
        assert measured <= profile["wall_seconds"]

    def test_progress_heartbeat_logged(self, caplog):
        config = SimulationConfig.for_cores(
            2, telemetry=TelemetryConfig(progress=True,
                                         progress_cycles=500))
        workload = scalar_matmul(size=8, num_cores=2)
        with caplog.at_level(logging.INFO, logger="repro.telemetry"):
            results = Simulation(config, workload.program).run()
        assert results.cycles > 500
        assert any("progress" in record.message
                   for record in caplog.records)
