"""Guest-profiler tests: conservation, attribution, zero-cost hooks.

The central property (ISSUE 6): on every profiled run, each core's CPI
stack sums *exactly* to the run's total cycles, the stall classes
cross-check against the orchestrator's own stall counters, and
enabling profiling leaves the simulated outcome bit-identical.
"""

import hashlib
import json

import pytest

from repro.api import run
from repro.coyote import Simulation, SimulationConfig
from repro.coyote.cli import make_workload
from repro.telemetry import TelemetryConfig
from repro.telemetry.guestprof import (
    CPI_CLASSES,
    CpiStack,
    GuestProfiler,
    ProfileError,
)
from repro.telemetry.profile_report import (
    PROFILE_SCHEMA,
    profile_document,
    render_annotated,
    render_flat,
)

_HOST_FIELDS = ("wall_seconds", "host_mips", "host_profile",
                "guest_profile")


def _profiled_run(kernel, cores, size, **overrides):
    workload = make_workload(kernel, cores=cores, size=size)
    config = SimulationConfig.for_cores(
        workload.num_cores,
        telemetry=TelemetryConfig(guest_profile=True), **overrides)
    simulation = Simulation(config, workload.program)
    return simulation, simulation.run()


def _digest(results) -> str:
    data = results.to_dict()
    for field in _HOST_FIELDS:
        data.pop(field, None)
    return hashlib.sha256(
        json.dumps(data, sort_keys=True, default=str).encode()).hexdigest()


# -- the conservation property --------------------------------------------


@pytest.mark.parametrize("cores", [1, 2, 4, 8])
@pytest.mark.parametrize("kernel,size", [
    ("scalar-matmul", 6),
    ("scalar-spmv", 8),
    ("vector-matmul", 6),
    ("stream-triad", 16),
    ("histogram", 16),
])
def test_cpi_stack_conserves_cycles(kernel, size, cores):
    _sim, results = _profiled_run(kernel, cores, size)
    profile = results.guest_profile
    assert profile is not None
    assert len(profile.stacks) == cores
    for stack in profile.stacks:
        assert set(stack.classes) == set(CPI_CLASSES)
        assert sum(stack.classes.values()) == results.cycles
        assert all(value >= 0 for value in stack.classes.values())
        stack.check()  # the same invariant, via the public checker
    aggregate = profile.aggregate()
    assert aggregate.cycles == results.cycles * cores
    assert sum(aggregate.classes.values()) == aggregate.cycles


@pytest.mark.parametrize("kernel,size", [("scalar-matmul", 6),
                                         ("scalar-spmv", 8)])
def test_stall_classes_match_orchestrator_counters(kernel, size):
    _sim, results = _profiled_run(kernel, 4, size)
    for core_stats, stack in zip(results.cores,
                                 results.guest_profile.stacks):
        classes = stack.classes
        assert (classes["raw_l2"] + classes["raw_mem"]
                + classes["raw_other"]) == core_stats.raw_stall_cycles
        assert (classes["fetch_l2"] + classes["fetch_mem"]
                + classes["fetch_other"]) \
            == core_stats.fetch_stall_cycles
        assert (classes["retired"] + classes["retired_vector"]) \
            == core_stats.instructions


def test_retired_vector_separated():
    _sim, results = _profiled_run("vector-matmul", 2, 6)
    aggregate = results.guest_profile.aggregate()
    assert aggregate.classes["retired_vector"] > 0
    assert aggregate.classes["retired"] > 0


# -- digest identity -------------------------------------------------------


@pytest.mark.parametrize("kernel,cores,size", [
    ("scalar-matmul", 8, 6),
    ("scalar-spmv", 2, 8),
    ("vector-matmul", 2, 6),
])
def test_profiling_leaves_digest_identical(kernel, cores, size):
    workload = make_workload(kernel, cores=cores, size=size)
    plain = Simulation(SimulationConfig.for_cores(workload.num_cores),
                       workload.program)
    plain_digest = _digest(plain.run())
    _sim, profiled = _profiled_run(kernel, cores, size)
    assert _digest(profiled) == plain_digest


# -- hot blocks and miss attribution ---------------------------------------


def test_hot_blocks_cover_all_instructions():
    _sim, results = _profiled_run("scalar-spmv", 4, 10)
    profile = results.guest_profile
    assert profile.blocks
    assert sum(block.instructions
               for block in profile.blocks) == results.instructions
    # Sorted hottest-first, block bounds sane.
    counts = [block.instructions for block in profile.blocks]
    assert counts == sorted(counts, reverse=True)
    for block in profile.blocks:
        assert block.start_pc <= block.end_pc
    # The hottest blocks carry disassembly annotation.
    top = profile.top_blocks(1)[0]
    assert top.disassembly
    assert any(";" in line for line in top.disassembly)


def test_per_pc_and_per_line_misses_match_l1_counters():
    _sim, results = _profiled_run("scalar-spmv", 2, 10)
    profile = results.guest_profile
    assert profile.pc_misses
    submitted = sum(events["loads"] + events["stores"]
                    + events["ifetches"]
                    for events in profile.pc_misses.values())
    l1 = sum(core.l1d.misses + core.l1i.misses
             for core in results.cores)
    # Every L1 miss is attributed to a PC exactly once.
    assert submitted == l1
    assert sum(profile.line_misses.values()) == l1
    # Stall cycles attributed per PC sum to the stall classes.
    attributed = sum(events["stall_cycles"]
                     for events in profile.pc_misses.values())
    aggregate = profile.aggregate().classes
    assert attributed == sum(aggregate[name] for name in
                             ("raw_l2", "raw_mem", "raw_other",
                              "fetch_l2", "fetch_mem", "fetch_other"))


def test_stat_samples_and_reports_render():
    _sim, results = _profiled_run("scalar-matmul", 2, 6)
    profile = results.guest_profile
    samples = profile.samples()
    assert any(sample.path == "guestprof.core0" for sample in samples)
    assert "retired" in profile.stat_report()
    flat = render_flat(profile, top=3, per_core=True)
    assert "CPI stack" in flat and "hot blocks" in flat
    assert "core 1" in flat
    annotated = render_annotated(profile, top=2)
    assert "block #1" in annotated
    document = profile_document(profile, kernel="scalar-matmul",
                                cores=2, verified=True)
    assert document["schema"] == PROFILE_SCHEMA
    json.dumps(document)  # JSON-serialisable end to end


def test_results_to_dict_embeds_profile():
    _sim, results = _profiled_run("scalar-matmul", 2, 6)
    data = results.to_dict()
    assert data["guest_profile"]["cycles"] == results.cycles
    assert data["guest_profile"]["hot_blocks"]


# -- export through the facade ---------------------------------------------


def test_api_run_profile_kwarg():
    outcome = run("scalar-matmul", cores=2, size=6, profile=True)
    assert outcome.succeeded
    assert outcome.guest_profile is not None
    for stack in outcome.guest_profile.stacks:
        stack.check()


def test_api_run_profile_does_not_mutate_caller_config():
    config = SimulationConfig.for_cores(2)
    outcome = run("scalar-matmul", cores=2, size=6, config=config,
                  profile=True)
    assert outcome.guest_profile is not None
    assert config.telemetry.guest_profile is False


def test_api_run_without_profile_has_none():
    outcome = run("scalar-matmul", cores=2, size=6)
    assert outcome.guest_profile is None


# -- zero-cost-when-disabled contract ---------------------------------------


def test_disabled_profiling_attaches_no_hooks():
    workload = make_workload("scalar-matmul", cores=2, size=6)
    simulation = Simulation(SimulationConfig.for_cores(2),
                            workload.program)
    assert simulation.orchestrator._guestprof is None
    assert all(core.profile is None
               for core in simulation.orchestrator.cores)


def test_enabled_profiling_attaches_per_core_hooks():
    workload = make_workload("scalar-matmul", cores=2, size=6)
    config = SimulationConfig.for_cores(
        2, telemetry=TelemetryConfig(guest_profile=True))
    simulation = Simulation(config, workload.program)
    guestprof = simulation.orchestrator._guestprof
    assert guestprof is not None
    for core, profile in zip(simulation.orchestrator.cores,
                             guestprof.cores):
        assert core.profile is profile


# -- chrome counter tracks ---------------------------------------------------


def test_chrome_counter_tracks_emitted():
    workload = make_workload("scalar-spmv", cores=2, size=8)
    config = SimulationConfig.for_cores(
        2, telemetry=TelemetryConfig(guest_profile=True,
                                     chrome_trace=True))
    simulation = Simulation(config, workload.program)
    simulation.run()
    events = simulation.telemetry.chrome.events
    counters = [event for event in events if event["ph"] == "C"]
    assert counters
    assert any(event["name"] == "core0 stall cycles"
               for event in counters)
    sample = counters[-1]["args"]
    assert set(sample) == {"raw_l2", "raw_mem", "raw_other",
                           "fetch_l2", "fetch_mem", "fetch_other"}


# -- checkpoint/restore ------------------------------------------------------


def test_profile_survives_checkpoint_roundtrip():
    import pickle

    workload = make_workload("scalar-spmv", cores=2, size=8)
    config = SimulationConfig.for_cores(
        2, telemetry=TelemetryConfig(guest_profile=True))
    simulation = Simulation(config, workload.program)
    assert simulation.run(pause_at=200) is None
    restored = pickle.loads(pickle.dumps(simulation))
    results = restored.run()
    profile = results.guest_profile
    for stack in profile.stacks:
        stack.check()
    # Matches an uninterrupted profiled run bit-for-bit.
    _sim, uninterrupted = _profiled_run("scalar-spmv", 2, 8)
    assert profile.to_dict() == \
        uninterrupted.guest_profile.to_dict()


# -- the integrity checker itself -------------------------------------------


def test_cpi_stack_check_raises_on_imbalance():
    stack = CpiStack(core_id=0, cycles=100,
                     classes=dict.fromkeys(CPI_CLASSES, 0))
    with pytest.raises(ProfileError):
        stack.check()


def test_finalize_cross_checks_stall_accounting():
    class FakeState:
        raw_stall_cycles = 7
        fetch_stall_cycles = 0
        halt_cycle = None

    profiler = GuestProfiler(num_cores=1)
    # The profiler saw no stalls but the orchestrator counted 7.
    with pytest.raises(ProfileError):
        profiler.finalize(10, [FakeState()])
