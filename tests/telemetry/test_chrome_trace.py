"""Tests for the Chrome trace-event JSON exporter.

The end-to-end test runs a multi-core kernel and schema-checks the
emitted JSON against the trace-event format: every event carries the
required fields for its phase, complete events have durations, and
async begin/end pairs match up.
"""

import json

import pytest

from repro.coyote import Simulation, SimulationConfig, TelemetryConfig
from repro.coyote.simulation import SimulationError
from repro.kernels import scalar_matmul
from repro.telemetry.chrome_trace import ChromeTraceBuilder, EXECUTING, \
    FETCH_STALL, RAW_STALL

VALID_PHASES = {"M", "X", "b", "e", "i"}


def schema_check(document: dict) -> list[dict]:
    """Assert the trace-event JSON object form; returns the events."""
    assert isinstance(document, dict)
    assert isinstance(document["traceEvents"], list)
    open_async: dict[tuple, int] = {}
    for event in document["traceEvents"]:
        assert isinstance(event, dict)
        assert event["ph"] in VALID_PHASES
        assert isinstance(event["name"], str) and event["name"]
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "M":
            assert "args" in event
            continue
        assert isinstance(event["ts"], int) and event["ts"] >= 0
        if event["ph"] == "X":
            assert isinstance(event["dur"], int) and event["dur"] > 0
        if event["ph"] in ("b", "e"):
            assert "id" in event and "cat" in event
            key = (event["cat"], event["id"])
            open_async[key] = open_async.get(key, 0) \
                + (1 if event["ph"] == "b" else -1)
    assert all(count == 0 for count in open_async.values()), \
        "unbalanced async begin/end pairs"
    return document["traceEvents"]


class TestBuilderUnit:
    def test_initial_metadata(self):
        builder = ChromeTraceBuilder(2)
        names = [event["name"] for event in builder.events
                 if event["ph"] == "M"]
        assert names.count("thread_name") == 4
        assert names.count("process_name") == 2

    def test_span_emitted_on_transition(self):
        builder = ChromeTraceBuilder(1)
        builder.set_state(0, RAW_STALL, 10)
        spans = [event for event in builder.events if event["ph"] == "X"]
        assert spans == [{"ph": "X", "name": EXECUTING, "cat": "core",
                          "pid": 1, "tid": 0, "ts": 0, "dur": 10}]

    def test_same_state_transition_is_noop(self):
        builder = ChromeTraceBuilder(1)
        builder.set_state(0, EXECUTING, 10)
        assert not [e for e in builder.events if e["ph"] == "X"]

    def test_zero_length_span_skipped(self):
        builder = ChromeTraceBuilder(1)
        builder.set_state(0, RAW_STALL, 0)
        builder.set_state(0, EXECUTING, 0)
        assert not [e for e in builder.events if e["ph"] == "X"]

    def test_halt_closes_track(self):
        builder = ChromeTraceBuilder(1)
        builder.halt(0, 25)
        spans = [e for e in builder.events if e["ph"] == "X"]
        instants = [e for e in builder.events if e["ph"] == "i"]
        assert spans[0]["dur"] == 25
        assert instants[0]["name"] == "halt"
        # finalize after halt must not emit anything further.
        builder.finalize(100)
        assert len([e for e in builder.events if e["ph"] == "X"]) == 1

    def test_finalize_closes_open_spans(self):
        builder = ChromeTraceBuilder(2)
        builder.set_state(0, FETCH_STALL, 5)
        builder.finalize(20)
        spans = [e for e in builder.events if e["ph"] == "X"]
        assert {(s["name"], s["dur"]) for s in spans if s["tid"] == 0} \
            == {(EXECUTING, 5), (FETCH_STALL, 15)}
        assert {(s["name"], s["dur"]) for s in spans if s["tid"] == 1} \
            == {(EXECUTING, 20)}


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def run(self):
        config = SimulationConfig.for_cores(
            4, telemetry=TelemetryConfig(chrome_trace=True))
        workload = scalar_matmul(size=8, num_cores=4)
        simulation = Simulation(config, workload.program)
        results = simulation.run()
        assert results.succeeded()
        return simulation, results

    def test_written_file_passes_schema_check(self, run, tmp_path):
        simulation, _results = run
        path = simulation.write_chrome_trace(tmp_path / "trace.json")
        document = json.loads(path.read_text())
        events = schema_check(document)
        assert events, "trace must not be empty"

    def test_every_core_has_spans_and_a_halt(self, run):
        simulation, _results = run
        events = simulation.telemetry.chrome.events
        for core_id in range(4):
            spans = [e for e in events
                     if e["ph"] == "X" and e["tid"] == core_id]
            assert spans
            halts = [e for e in events if e["ph"] == "i"
                     and e["tid"] == core_id]
            assert len(halts) == 1

    def test_span_times_bounded_by_run(self, run):
        simulation, results = run
        for event in simulation.telemetry.chrome.events:
            if event["ph"] == "X":
                assert event["ts"] + event["dur"] <= results.cycles

    def test_request_pairs_match_completed_requests(self, run):
        simulation, results = run
        events = simulation.telemetry.chrome.events
        begins = [e for e in events if e["ph"] == "b"]
        completed = results.hierarchy_value("memhier.requests_completed")
        assert len(begins) == int(completed)

    def test_stall_spans_present_for_memory_bound_run(self, run):
        simulation, _results = run
        names = {e["name"] for e in simulation.telemetry.chrome.events
                 if e["ph"] == "X"}
        assert EXECUTING in names
        assert RAW_STALL in names or FETCH_STALL in names

    def test_write_requires_enablement(self):
        config = SimulationConfig.for_cores(1)
        workload = scalar_matmul(size=4, num_cores=1)
        simulation = Simulation(config, workload.program)
        simulation.run()
        with pytest.raises(SimulationError):
            simulation.write_chrome_trace("/tmp/nope.json")

    def test_write_requires_run(self, tmp_path):
        config = SimulationConfig.for_cores(
            1, telemetry=TelemetryConfig(chrome_trace=True))
        workload = scalar_matmul(size=4, num_cores=1)
        simulation = Simulation(config, workload.program)
        with pytest.raises(SimulationError):
            simulation.write_chrome_trace(tmp_path / "trace.json")
