"""Tests for log2-bucketed latency histograms."""

import pytest

from repro.coyote import Simulation, SimulationConfig, TelemetryConfig
from repro.kernels import scalar_spmv
from repro.memhier.request import MemRequest, RequestKind
from repro.telemetry.histogram import LatencyHistogram, \
    RequestLatencyRecorder


class TestLatencyHistogram:
    def test_bucket_bounds(self):
        assert LatencyHistogram.bucket_bounds(0) == (0, 0)
        assert LatencyHistogram.bucket_bounds(1) == (1, 1)
        assert LatencyHistogram.bucket_bounds(2) == (2, 3)
        assert LatencyHistogram.bucket_bounds(5) == (16, 31)

    def test_record_places_values_in_their_bucket(self):
        histogram = LatencyHistogram("x")
        for value in (0, 1, 2, 3, 16, 31):
            histogram.record(value)
        assert histogram.buckets[0] == 1
        assert histogram.buckets[1] == 1
        assert histogram.buckets[2] == 2
        assert histogram.buckets[5] == 2
        assert histogram.count == 6

    def test_every_value_falls_inside_its_bucket_bounds(self):
        for value in range(0, 300):
            index = value.bit_length()
            low, high = LatencyHistogram.bucket_bounds(index)
            assert low <= value <= high

    def test_summary_stats(self):
        histogram = LatencyHistogram("x")
        for value in (10, 20, 30):
            histogram.record(value)
        assert histogram.mean == pytest.approx(20.0)
        assert histogram.min == 10
        assert histogram.max == 30
        assert histogram.total == 60

    def test_percentile_clamped_to_observed_max(self):
        histogram = LatencyHistogram("x")
        histogram.record(100)
        assert histogram.percentile(0.5) == 100
        assert histogram.percentile(0.99) == 100

    def test_percentile_of_empty(self):
        assert LatencyHistogram("x").percentile(0.5) == 0

    def test_percentile_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            LatencyHistogram("x").percentile(1.5)

    def test_negative_latency_clamped(self):
        histogram = LatencyHistogram("x")
        histogram.record(-5)
        assert histogram.buckets[0] == 1
        assert histogram.min == 0

    def test_to_dict_skips_empty_buckets(self):
        histogram = LatencyHistogram("x")
        histogram.record(1)
        histogram.record(64)
        data = histogram.to_dict()
        assert data["count"] == 2
        assert len(data["buckets"]) == 2
        assert all(bucket["count"] for bucket in data["buckets"])


def make_request(kind=RequestKind.LOAD, *, issue=10, complete=150,
                 bank_id=3, mc_id=1, l2_hit=False):
    request = MemRequest(request_id=1, core_id=0, tile_id=0,
                         line_address=0x1000, kind=kind, issue_cycle=issue)
    request.bank_id = bank_id
    request.mc_id = mc_id
    request.l2_hit = l2_hit
    request.complete_cycle = complete
    return request


class TestRequestLatencyRecorder:
    def test_keys_for_memory_roundtrip(self):
        recorder = RequestLatencyRecorder()
        recorder.observe_request(make_request())
        assert set(recorder.histograms) == {
            "kind.load", "memory_roundtrip", "bank.bank3", "mc.mc1"}

    def test_keys_for_l2_hit(self):
        recorder = RequestLatencyRecorder()
        recorder.observe_request(
            make_request(l2_hit=True, mc_id=-1, complete=30))
        assert set(recorder.histograms) == {
            "kind.load", "l2_hit", "bank.bank3"}
        assert recorder.histograms["l2_hit"].max == 20

    def test_noc_observations(self):
        recorder = RequestLatencyRecorder()
        recorder.observe_noc(6)
        recorder.observe_noc(8)
        assert recorder.histograms["noc"].count == 2

    def test_format_report_lists_all_keys(self):
        recorder = RequestLatencyRecorder()
        recorder.observe_request(make_request())
        recorder.observe_noc(6)
        report = recorder.format_report()
        for key in ("kind.load", "noc", "bank.bank3"):
            assert key in report

    def test_empty_report(self):
        assert "no latency samples" in \
            RequestLatencyRecorder().format_report()


class TestEndToEnd:
    def test_histograms_from_a_run(self):
        config = SimulationConfig.for_cores(
            4, telemetry=TelemetryConfig(histograms=True))
        workload = scalar_spmv(num_rows=32, nnz_per_row=4, num_cores=4)
        simulation = Simulation(config, workload.program)
        results = simulation.run()
        histograms = results.latency.histograms
        # Every completed request landed in exactly one kind histogram.
        completed = results.hierarchy_value("memhier.requests_completed")
        kind_total = sum(h.count for key, h in histograms.items()
                         if key.startswith("kind."))
        assert kind_total == int(completed)
        # ... and in exactly one of the hit/roundtrip split.
        split_total = (histograms["l2_hit"].count
                       if "l2_hit" in histograms else 0) \
            + (histograms["memory_roundtrip"].count
               if "memory_roundtrip" in histograms else 0)
        assert split_total == int(completed)
        # NoC traversals match the NoC message counter.
        assert histograms["noc"].count \
            == int(results.hierarchy_value("memhier.noc.messages"))

    def test_l2_hits_faster_than_memory(self):
        config = SimulationConfig.for_cores(
            2, telemetry=TelemetryConfig(histograms=True))
        workload = scalar_spmv(num_rows=24, nnz_per_row=4, num_cores=2)
        simulation = Simulation(config, workload.program)
        results = simulation.run()
        histograms = results.latency.histograms
        if "l2_hit" in histograms and "memory_roundtrip" in histograms:
            assert histograms["l2_hit"].mean \
                < histograms["memory_roundtrip"].mean
