"""Campaign progress telemetry: k/n lines, ETA, failure counts."""

import pytest

from repro.telemetry.campaign import CampaignProgress


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def make_progress(total=4):
    clock = FakeClock()
    lines = []
    progress = CampaignProgress(total, clock=clock, sink=lines.append)
    return progress, clock, lines


class TestCampaignProgress:
    def test_progress_line_shape(self):
        progress, clock, lines = make_progress(total=4)
        clock.now += 2.0
        line = progress.point_completed({"noc.latency": 2})
        assert line.startswith("sweep: 1/4 points (25%)")
        assert "elapsed 2.0s" in line
        assert "eta 6.0s" in line  # 2s/point * 3 remaining
        assert lines == [line]

    def test_eta_needs_one_completed_point(self):
        progress, _clock, _lines = make_progress()
        assert progress.eta_seconds() is None

    def test_final_point_drops_the_eta(self):
        progress, clock, _lines = make_progress(total=2)
        clock.now += 1.0
        progress.point_completed({})
        clock.now += 1.0
        line = progress.point_completed({})
        assert "2/2 points (100%)" in line
        assert "eta" not in line

    def test_failures_are_counted_and_named(self):
        progress, clock, _lines = make_progress(total=3)
        clock.now += 1.0
        progress.point_completed({"noc.latency": 2})
        clock.now += 1.0
        line = progress.point_completed({"noc.latency": 7}, failed=True)
        assert "1 failed" in line
        assert "last failure {'noc.latency': 7}" in line

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError, match="total"):
            CampaignProgress(-1)

    def test_logger_sink_by_default(self, caplog):
        import logging
        progress = CampaignProgress(1)
        with caplog.at_level(logging.INFO, "repro.telemetry.campaign"):
            progress.point_completed({})
        assert any("1/1 points" in record.message
                   for record in caplog.records)
