"""Tests for register-name and CSR-name resolution."""

import pytest

from repro.isa.csr import (
    CSR_BY_NAME,
    MHARTID,
    READ_ONLY_CSRS,
    VL,
    csr_name,
    parse_csr,
)
from repro.isa.registers import (
    fp_reg_name,
    int_reg_name,
    parse_fp_reg,
    parse_int_reg,
    parse_vec_reg,
    vec_reg_name,
)


class TestIntRegisters:
    def test_numeric_names(self):
        assert parse_int_reg("x0") == 0
        assert parse_int_reg("x31") == 31

    def test_abi_names(self):
        assert parse_int_reg("zero") == 0
        assert parse_int_reg("ra") == 1
        assert parse_int_reg("sp") == 2
        assert parse_int_reg("a0") == 10
        assert parse_int_reg("t6") == 31

    def test_fp_alias(self):
        assert parse_int_reg("fp") == parse_int_reg("s0") == 8

    def test_case_insensitive(self):
        assert parse_int_reg("A0") == 10

    def test_unknown(self):
        with pytest.raises(ValueError):
            parse_int_reg("x32")
        with pytest.raises(ValueError):
            parse_int_reg("rax")

    def test_round_trip_all(self):
        for index in range(32):
            assert parse_int_reg(int_reg_name(index)) == index


class TestFpVecRegisters:
    def test_fp_round_trip(self):
        for index in range(32):
            assert parse_fp_reg(fp_reg_name(index)) == index
            assert parse_fp_reg(f"f{index}") == index

    def test_vec_round_trip(self):
        for index in range(32):
            assert parse_vec_reg(vec_reg_name(index)) == index

    def test_vec_out_of_range(self):
        with pytest.raises(ValueError):
            parse_vec_reg("v32")
        with pytest.raises(ValueError):
            vec_reg_name(32)

    def test_classes_disjoint(self):
        with pytest.raises(ValueError):
            parse_fp_reg("a0")
        with pytest.raises(ValueError):
            parse_int_reg("fa0")


class TestCsrs:
    def test_names_resolve(self):
        assert parse_csr("mhartid") == MHARTID
        assert parse_csr("vl") == VL

    def test_numeric_form(self):
        assert parse_csr("0xF14") == MHARTID
        assert parse_csr("3860") == MHARTID

    def test_numeric_out_of_range(self):
        with pytest.raises(ValueError):
            parse_csr("4096")

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            parse_csr("mfoobar")

    def test_csr_name_lookup(self):
        assert csr_name(MHARTID) == "mhartid"
        assert csr_name(0x123) == "csr0x123"

    def test_read_only_set_contents(self):
        assert MHARTID in READ_ONLY_CSRS
        assert VL in READ_ONLY_CSRS

    def test_name_table_bijective(self):
        addresses = list(CSR_BY_NAME.values())
        assert len(addresses) == len(set(addresses))
