"""Tests for the instruction decoder (via assembler-encoded words)."""

import pytest

from repro.assembler.encoder import EncodeContext, encode
from repro.isa.decoder import IllegalInstruction, decode


def enc(mnemonic, *operands, pc=0x8000_0000, symbols=None):
    symbols = symbols or {}

    def resolve(text):
        text = text.strip()
        try:
            return int(text, 0)
        except ValueError:
            return symbols[text]

    return encode(mnemonic, list(operands), EncodeContext(pc=pc,
                                                          resolve=resolve))


def dec(mnemonic, *operands, **kwargs):
    return decode(enc(mnemonic, *operands, **kwargs))


class TestScalarInteger:
    def test_addi(self):
        instr = dec("addi", "a0", "a1", "-5")
        assert instr.mnemonic == "addi"
        assert instr.rd == 10 and instr.rs1 == 11 and instr.imm == -5

    def test_add_sources(self):
        instr = dec("add", "t0", "t1", "t2")
        assert instr.srcs == (("x", 6), ("x", 7))
        assert instr.dests == (("x", 5),)

    def test_x0_not_tracked(self):
        instr = dec("add", "zero", "zero", "t2")
        assert instr.dests == ()
        assert instr.srcs == (("x", 7),)

    def test_shift_imm(self):
        instr = dec("srai", "a0", "a0", "63")
        assert instr.mnemonic == "srai" and instr.shamt == 63

    def test_word_shift(self):
        instr = dec("sraiw", "a0", "a0", "31")
        assert instr.mnemonic == "sraiw" and instr.shamt == 31

    def test_mul_family(self):
        for mnemonic in ("mul", "mulh", "mulhsu", "mulhu", "div", "divu",
                         "rem", "remu", "mulw", "divw", "remuw"):
            instr = dec(mnemonic, "a0", "a1", "a2")
            assert instr.mnemonic == mnemonic

    def test_lui(self):
        instr = dec("lui", "gp", "0x12345")
        assert instr.imm == 0x12345 << 12

    def test_lui_sign_extends(self):
        instr = decode(enc("lui", "gp", "0x80000"))
        assert instr.imm == -(1 << 31)


class TestMemory:
    def test_load_flags(self):
        instr = dec("ld", "a0", "8(sp)")
        assert instr.is_load and not instr.is_store
        assert instr.imm == 8 and instr.rs1 == 2

    def test_store_flags(self):
        instr = dec("sd", "a0", "-16(sp)")
        assert instr.is_store and not instr.is_load
        assert instr.imm == -16
        assert instr.dests == ()
        assert set(instr.srcs) == {("x", 2), ("x", 10)}

    def test_all_load_widths(self):
        for mnemonic in ("lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"):
            assert dec(mnemonic, "a0", "0(a1)").mnemonic == mnemonic

    def test_load_dest_tracked(self):
        instr = dec("lw", "s3", "0(a0)")
        assert instr.dests == (("x", 19),)


class TestControlFlow:
    def test_branch(self):
        # Branch targets are absolute; the encoder makes them PC-relative.
        instr = dec("bne", "a0", "a1", "target",
                    symbols={"target": 0x8000_0040})
        assert instr.is_branch and instr.imm == 64

    def test_branch_negative(self):
        instr = dec("beq", "a0", "a1", "target",
                    symbols={"target": 0x8000_0000 - 64})
        assert instr.imm == -64

    def test_jal(self):
        instr = dec("jal", "ra", "target",
                    symbols={"target": 0x8000_0800})
        assert instr.is_jump and instr.rd == 1 and instr.imm == 2048

    def test_jalr(self):
        instr = dec("jalr", "ra", "0(t0)")
        assert instr.is_jump and instr.rs1 == 5


class TestSystem:
    def test_ecall_ebreak(self):
        assert dec("ecall").is_system
        assert dec("ebreak").is_system

    def test_csr_register_form(self):
        instr = dec("csrrw", "a0", "mhartid", "a1")
        assert instr.csr == 0xF14
        assert instr.srcs == (("x", 11),)

    def test_csr_immediate_form(self):
        instr = dec("csrrwi", "a0", "0x300", "7")
        assert instr.imm == 7 and instr.srcs == ()

    def test_fence(self):
        assert dec("fence").mnemonic == "fence"


class TestAtomics:
    def test_lr(self):
        instr = dec("lr.d", "a0", "(a1)")
        assert instr.is_load and instr.is_amo

    def test_sc(self):
        instr = dec("sc.d", "a0", "a2", "(a1)")
        assert instr.is_store and instr.is_amo and not instr.is_load

    def test_amoadd(self):
        instr = dec("amoadd.w", "a0", "a2", "(a1)")
        assert instr.is_load and instr.is_store and instr.is_amo

    def test_all_amos_decode(self):
        for base in ("amoswap", "amoadd", "amoxor", "amoand", "amoor",
                     "amomin", "amomax", "amominu", "amomaxu"):
            for size in ("w", "d"):
                assert dec(f"{base}.{size}", "a0", "a2",
                           "(a1)").mnemonic == f"{base}.{size}"


class TestFloatingPoint:
    def test_fld_dest_class(self):
        instr = dec("fld", "fa0", "0(a0)")
        assert instr.dests == (("f", 10),)
        assert instr.is_load and instr.is_fp

    def test_fsd_srcs(self):
        instr = dec("fsd", "fa0", "0(a0)")
        assert ("f", 10) in instr.srcs and ("x", 10) in instr.srcs

    def test_fmadd(self):
        instr = dec("fmadd.d", "fa0", "fa1", "fa2", "fa3")
        assert instr.mnemonic == "fmadd.d"
        assert instr.srcs == (("f", 11), ("f", 12), ("f", 13))

    def test_fp_compare_dest_is_int(self):
        instr = dec("flt.d", "a0", "fa0", "fa1")
        assert instr.dests == (("x", 10),)

    def test_fcvt_directions(self):
        to_int = dec("fcvt.l.d", "a0", "fa0")
        assert to_int.dests == (("x", 10),)
        to_fp = dec("fcvt.d.l", "fa0", "a0")
        assert to_fp.dests == (("f", 10),)

    def test_fmv_bit_moves(self):
        assert dec("fmv.x.d", "a0", "fa0").mnemonic == "fmv.x.d"
        assert dec("fmv.d.x", "fa0", "a0").mnemonic == "fmv.d.x"


class TestVector:
    def test_vsetvli(self):
        instr = dec("vsetvli", "t0", "a0", "e64", "m1", "ta", "ma")
        assert instr.mnemonic == "vsetvli" and instr.is_vector

    def test_vadd_vv(self):
        instr = dec("vadd.vv", "v1", "v2", "v3")
        assert instr.srcs == (("v", 2), ("v", 3))
        assert instr.dests == (("v", 1),)

    def test_vadd_vx(self):
        instr = dec("vadd.vx", "v1", "v2", "a0")
        assert ("x", 10) in instr.srcs

    def test_vadd_vi(self):
        instr = dec("vadd.vi", "v1", "v2", "-9")
        assert instr.imm == -9

    def test_masked_op_reads_v0(self):
        instr = dec("vadd.vv", "v1", "v2", "v3", "v0.t")
        assert instr.vm == 0 and ("v", 0) in instr.srcs

    def test_unit_stride_load(self):
        instr = dec("vle64.v", "v4", "(a0)")
        assert instr.is_vector_mem and instr.is_load and instr.eew == 64
        assert instr.dests == (("v", 4),)

    def test_indexed_load_reads_index_vector(self):
        instr = dec("vluxei64.v", "v4", "(a0)", "v8")
        assert ("v", 8) in instr.srcs and instr.mop == 0b01

    def test_store_data_is_source(self):
        instr = dec("vse64.v", "v4", "(a0)")
        assert ("v", 4) in instr.srcs and instr.dests == ()

    def test_strided_load_reads_stride_reg(self):
        instr = dec("vlse64.v", "v4", "(a0)", "a1")
        assert ("x", 11) in instr.srcs and instr.mop == 0b10

    def test_macc_vd_is_source(self):
        instr = dec("vfmacc.vf", "v8", "fa0", "v9")
        assert ("v", 8) in instr.srcs and instr.dests == (("v", 8),)

    def test_reduction(self):
        instr = dec("vfredosum.vs", "v5", "v4", "v5")
        assert instr.mnemonic == "vfredosum.vs"

    def test_vid(self):
        instr = dec("vid.v", "v3")
        assert instr.dests == (("v", 3),)


class TestIllegal:
    def test_compressed_rejected(self):
        with pytest.raises(IllegalInstruction):
            decode(0x0001)

    def test_unknown_opcode(self):
        with pytest.raises(IllegalInstruction):
            decode(0x0000_007F | 0x7F)

    def test_bad_funct(self):
        # OP with funct7=0x7F is not defined.
        with pytest.raises(IllegalInstruction):
            decode((0x7F << 25) | 0x33)

    def test_zero_word(self):
        with pytest.raises(IllegalInstruction):
            decode(0)
