"""Tests for the RVV vtype encoding and VLMAX arithmetic."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.vtype import LMUL_CODES, SEW_CODES, VType, parse_vtype_tokens


class TestEncodeDecode:
    def test_default_encoding(self):
        vt = VType(sew=64, lmul=Fraction(1))
        decoded = VType.decode(vt.encode())
        assert decoded.sew == 64 and decoded.lmul == Fraction(1)

    def test_vill_round_trip(self):
        vt = VType(vill=True)
        assert VType.decode(vt.encode()).vill

    def test_vill_is_msb(self):
        assert VType(vill=True).encode() == 1 << 63

    def test_tail_mask_bits(self):
        vt = VType(sew=32, tail_agnostic=False, mask_agnostic=False)
        decoded = VType.decode(vt.encode())
        assert not decoded.tail_agnostic and not decoded.mask_agnostic

    @given(st.sampled_from(sorted(SEW_CODES.values())),
           st.sampled_from(sorted(LMUL_CODES.values())),
           st.booleans(), st.booleans())
    def test_round_trip_all(self, sew, lmul, ta, ma):
        vt = VType(sew=sew, lmul=lmul, tail_agnostic=ta, mask_agnostic=ma)
        assert VType.decode(vt.encode()) == vt

    def test_invalid_sew_rejected(self):
        with pytest.raises(ValueError):
            VType(sew=128)

    def test_decode_garbage_is_vill(self):
        assert VType.decode(0b100).vill  # lmul code 0b100 is reserved


class TestVlmax:
    def test_basic(self):
        assert VType(sew=64, lmul=Fraction(1)).vlmax(512) == 8

    def test_lmul_scales(self):
        assert VType(sew=64, lmul=Fraction(8)).vlmax(512) == 64

    def test_fractional_lmul(self):
        assert VType(sew=32, lmul=Fraction(1, 2)).vlmax(512) == 8

    def test_vill_vlmax_zero(self):
        assert VType(vill=True).vlmax(512) == 0

    def test_register_group_size(self):
        assert VType(sew=64, lmul=Fraction(4)).register_group_size() == 4
        assert VType(sew=64,
                     lmul=Fraction(1, 2)).register_group_size() == 1


class TestParse:
    def test_standard_tokens(self):
        vt = parse_vtype_tokens(["e64", "m1", "ta", "ma"])
        assert vt.sew == 64 and vt.lmul == Fraction(1)

    def test_fractional_token(self):
        assert parse_vtype_tokens(["e16", "mf4"]).lmul == Fraction(1, 4)

    def test_tu_mu(self):
        vt = parse_vtype_tokens(["e32", "m2", "tu", "mu"])
        assert not vt.tail_agnostic and not vt.mask_agnostic

    def test_missing_sew(self):
        with pytest.raises(ValueError):
            parse_vtype_tokens(["m1", "ta"])

    def test_unknown_token(self):
        with pytest.raises(ValueError):
            parse_vtype_tokens(["e64", "m1", "bogus"])

    def test_describe_round_trips(self):
        vt = VType(sew=32, lmul=Fraction(2), tail_agnostic=True,
                   mask_agnostic=False)
        reparsed = parse_vtype_tokens(vt.describe().split(","))
        assert reparsed == vt
