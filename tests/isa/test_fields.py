"""Tests for raw instruction field packing/extraction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import fields as f
from repro.isa import opcodes as op


class TestExtraction:
    def test_opcode(self):
        assert f.opcode(0x0000_0033) == 0x33

    def test_registers(self):
        # add x5, x6, x7 == funct7=0 rs2=7 rs1=6 funct3=0 rd=5 op=0x33
        word = f.encode_r(op.OP, 5, 0, 6, 7, 0)
        assert f.rd(word) == 5
        assert f.rs1(word) == 6
        assert f.rs2(word) == 7
        assert f.funct3(word) == 0
        assert f.funct7(word) == 0

    def test_imm_i_positive(self):
        word = f.encode_i(op.OP_IMM, 1, 0, 2, 2047)
        assert f.imm_i(word) == 2047

    def test_imm_i_negative(self):
        word = f.encode_i(op.OP_IMM, 1, 0, 2, -2048)
        assert f.imm_i(word) == -2048

    def test_imm_u_sign(self):
        word = f.encode_u(op.LUI, 1, 0x80000)
        assert f.imm_u(word) == -(1 << 31)


class TestRoundtrips:
    @given(st.integers(min_value=-2048, max_value=2047))
    def test_i_type(self, imm):
        word = f.encode_i(op.OP_IMM, 3, 0, 4, imm)
        assert f.imm_i(word) == imm

    @given(st.integers(min_value=-2048, max_value=2047))
    def test_s_type(self, imm):
        word = f.encode_s(op.STORE, 3, 4, 5, imm)
        assert f.imm_s(word) == imm
        assert f.rs1(word) == 4
        assert f.rs2(word) == 5

    @given(st.integers(min_value=-2048, max_value=2047))
    def test_b_type(self, imm_half):
        offset = imm_half * 2
        word = f.encode_b(op.BRANCH, 1, 2, 3, offset)
        assert f.imm_b(word) == offset

    @given(st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1))
    def test_u_type(self, imm20):
        word = f.encode_u(op.LUI, 7, imm20)
        assert f.imm_u(word) == imm20 << 12

    @given(st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1))
    def test_j_type(self, imm_half):
        offset = imm_half * 2
        word = f.encode_j(op.JAL, 1, offset)
        assert f.imm_j(word) == offset

    @given(st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=127))
    def test_r_type_fields(self, rd, rs1, rs2, f3, f7):
        word = f.encode_r(op.OP, rd, f3, rs1, rs2, f7)
        assert (f.rd(word), f.rs1(word), f.rs2(word)) == (rd, rs1, rs2)
        assert (f.funct3(word), f.funct7(word)) == (f3, f7)


class TestVectorFields:
    def test_vector_arith_fields(self):
        word = f.encode_vector_arith(0x25, 1, 10, 11, 0b000, 12, op.OP_V)
        assert f.funct6(word) == 0x25
        assert f.vm(word) == 1
        assert f.rs2(word) == 10
        assert f.rs1(word) == 11
        assert f.rd(word) == 12

    def test_vector_mem_fields(self):
        word = f.encode_vector_mem(0, 0b10, 0, 5, 6, 0b111, 7, op.LOAD_FP)
        assert f.vmem_nf(word) == 0
        assert f.vmem_mop(word) == 0b10
        assert f.vm(word) == 0
        assert f.vmem_width(word) == 0b111

    def test_width_eew_mapping_bijective(self):
        for code, eew in f.VMEM_WIDTH_TO_EEW.items():
            assert f.EEW_TO_VMEM_WIDTH[eew] == code


class TestEncodeValidation:
    def test_register_out_of_range(self):
        with pytest.raises(ValueError):
            f.encode_r(op.OP, 32, 0, 0, 0, 0)

    def test_i_imm_out_of_range(self):
        with pytest.raises(ValueError):
            f.encode_i(op.OP_IMM, 1, 0, 2, 2048)

    def test_branch_odd_offset(self):
        with pytest.raises(ValueError):
            f.encode_b(op.BRANCH, 0, 1, 2, 3)

    def test_branch_out_of_range(self):
        with pytest.raises(ValueError):
            f.encode_b(op.BRANCH, 0, 1, 2, 4096)

    def test_jump_out_of_range(self):
        with pytest.raises(ValueError):
            f.encode_j(op.JAL, 1, 1 << 20)
