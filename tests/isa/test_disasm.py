"""Disassembler tests, including assemble->decode->disassemble->assemble
round trips."""

import pytest

from repro.assembler.encoder import EncodeContext, encode
from repro.isa.decoder import decode
from repro.isa.disasm import disassemble, disassemble_word


def enc(mnemonic, *operands):
    def resolve(text):
        return int(text, 0)
    return encode(mnemonic, list(operands), EncodeContext(pc=0,
                                                          resolve=resolve))


# Statements whose disassembly should re-encode to the same word.
ROUNDTRIP_CASES = [
    ("addi", "a0", "a1", "-5"),
    ("add", "t0", "t1", "t2"),
    ("sub", "s0", "s1", "s2"),
    ("slli", "a0", "a0", "17"),
    ("sraiw", "a1", "a2", "5"),
    ("lui", "gp", "0x12345"),
    ("ld", "a0", "8(sp)"),
    ("sd", "ra", "-16(sp)"),
    ("lbu", "t0", "0(t1)"),
    ("mul", "a0", "a1", "a2"),
    ("divu", "a3", "a4", "a5"),
    ("csrrw", "a0", "mhartid", "a1"),
    ("csrrsi", "zero", "mstatus", "8"),
    ("lr.d", "a0", "(a1)"),
    ("sc.w", "a0", "a2", "(a1)"),
    ("amoadd.d", "a0", "a2", "(a1)"),
    ("fld", "fa0", "24(sp)"),
    ("fsd", "fs1", "0(a0)"),
    ("fadd.d", "fa0", "fa1", "fa2"),
    ("fmadd.d", "fa0", "fa1", "fa2", "fa3"),
    ("fsqrt.d", "fa0", "fa1"),
    ("feq.d", "a0", "fa0", "fa1"),
    ("fcvt.d.l", "fa0", "a0"),
    ("fcvt.l.d", "a0", "fa0"),
    ("fmv.x.d", "a0", "fa0"),
    ("fmv.d.x", "fa0", "a0"),
    ("vsetvli", "t0", "a0", "e64", "m1", "ta", "ma"),
    ("vsetvl", "t0", "a0", "a1"),
    ("vadd.vv", "v1", "v2", "v3"),
    ("vadd.vx", "v1", "v2", "a0"),
    ("vadd.vi", "v1", "v2", "-9"),
    ("vsll.vi", "v1", "v2", "3"),
    ("vmul.vx", "v4", "v5", "t0"),
    ("vfmacc.vf", "v8", "fa1", "v9"),
    ("vfmacc.vv", "v8", "v1", "v9"),
    ("vmacc.vv", "v8", "v1", "v9"),
    ("vfadd.vv", "v1", "v2", "v3"),
    ("vfmul.vf", "v1", "v2", "fa0"),
    ("vfredosum.vs", "v5", "v4", "v5"),
    ("vredsum.vs", "v5", "v4", "v5"),
    ("vle64.v", "v1", "(a0)"),
    ("vse32.v", "v1", "(a0)"),
    ("vlse64.v", "v1", "(a0)", "a1"),
    ("vluxei64.v", "v1", "(a0)", "v2"),
    ("vsuxei32.v", "v1", "(a0)", "v2"),
    ("vmv.v.x", "v1", "a0"),
    ("vmv.v.i", "v1", "-3"),
    ("vmv.x.s", "a0", "v1"),
    ("vfmv.f.s", "fa0", "v1"),
    ("vfmv.v.f", "v1", "fa0"),
    ("vid.v", "v1"),
    ("vadd.vv", "v1", "v2", "v3", "v0.t"),
    ("vle64.v", "v1", "(a0)", "v0.t"),
]


@pytest.mark.parametrize("case", ROUNDTRIP_CASES,
                         ids=lambda case: " ".join(case))
def test_roundtrip(case):
    word = enc(*case)
    text = disassemble(decode(word))
    mnemonic, _, operand_text = text.partition(" ")
    from repro.assembler.lexer import split_operands
    operands = split_operands(operand_text)
    reencoded = encode(mnemonic, operands,
                       EncodeContext(pc=0, resolve=lambda t: int(t, 0)))
    assert reencoded == word, f"{case} -> {text!r} -> {reencoded:#010x}"


def test_fixed_mnemonics():
    assert disassemble_word(0x0000_0073) == "ecall"
    assert disassemble_word(0x0010_0073) == "ebreak"


def test_nop_prints_as_addi():
    assert disassemble_word(0x0000_0013) == "addi zero, zero, 0"


def test_branch_prints_offset():
    word = enc("beq", "a0", "a1", "0x40")  # absolute 0x40, pc=0
    assert disassemble_word(word) == "beq a0, a1, 64"
